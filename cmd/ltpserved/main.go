// Command ltpserved is the campaign service: a long-running HTTP/JSON
// server that executes simulations and scenario-matrix campaigns on
// one shared LPT worker pool with a content-addressed result cache, so
// identical requests — and identical cells inside overlapping
// campaigns — are computed once and served from cache thereafter.
//
// With -coordinator it instead fronts a fleet of ltpserved workers:
// sweep cells shard across the fleet by content address (consistent
// hashing with LPT spill), cells stranded by a dead or hung worker
// retry on the surviving ring, and the client API is unchanged from a
// single node.
//
// Examples:
//
//	ltpserved -addr :8080
//	ltpserved -addr 127.0.0.1:0 -parallel 8 -cache 16384
//	ltpserved -coordinator -addr :8080 -workers http://w1:8081,http://w2:8081
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/run -d '{"scenario":"hashjoin","max_insts":200000}'
//	curl -s -X POST 'localhost:8080/v1/matrix?stream=1' -d '{"seeds":3,"scale":0.1,"detail_insts":50000}'
//
// See API.md for the endpoint and schema reference, DESIGN.md §8 for
// the service architecture and §13 for the sharded fabric.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ltp/internal/fabric"
	"ltp/internal/server"
)

// drainable is the slice of server.Server / fabric.Coordinator the
// drain path needs.
type drainable interface {
	Handler() http.Handler
	Shutdown(ctx context.Context)
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		cacheN     = flag.Int("cache", 0, "result-cache entries (0 = default 4096)")
		storePath  = flag.String("store", "", "persistent result-store file (empty = in-memory cache only); results survive restarts — under -coordinator it banks resolved cells for restart resume")
		maxWarm    = flag.Uint64("max-warm", 0, "per-run warm-up instruction limit (0 = default 10M)")
		maxInsts   = flag.Uint64("max-insts", 0, "per-run detailed instruction limit (0 = default 10M)")
		maxJobs    = flag.Int("max-jobs", 0, "max concurrently active campaigns (0 = default 16)")
		runTimeout = flag.Float64("run-timeout", 0, "per-request /v1/run wall-clock limit in seconds (0 = default 300; negative disables)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM before active campaigns are cancelled")
		quiet      = flag.Bool("q", false, "suppress per-request logging")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator instead of a worker (requires -workers)")
		workers     = flag.String("workers", "", "comma-separated worker base URLs for -coordinator (e.g. http://w1:8081,http://w2:8081)")
		window      = flag.Int("window", 0, "coordinator: cells per dispatch batch per worker (0 = 16)")
		retries     = flag.Int("retries", 0, "coordinator: per-cell dispatch attempts across worker losses (0 = 3)")
		hang        = flag.Duration("hang-timeout", 0, "coordinator: sever a silent worker batch stream after this long (0 = 2m)")
		poll        = flag.Duration("poll", 0, "coordinator: worker health/stats poll interval (0 = 2s)")
		tenantJobs  = flag.Int("tenant-jobs", 0, "coordinator: max active campaigns per tenant (X-LTP-Tenant header; 0 = max-jobs)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "ltpserved: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	limits := server.Limits{
		MaxWarmInsts:      *maxWarm,
		MaxDetailInsts:    *maxInsts,
		MaxActiveJobs:     *maxJobs,
		RunTimeoutSeconds: *runTimeout,
	}

	var svc drainable
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			logger.Fatalf("-coordinator requires -workers (comma-separated base URLs)")
		}
		coord, err := fabric.New(fabric.Config{
			Workers:         urls,
			Limits:          limits,
			Window:          *window,
			RetryAttempts:   *retries,
			HangTimeout:     *hang,
			PollInterval:    *poll,
			TenantMaxActive: *tenantJobs,
			StorePath:       *storePath,
			Logf:            logf,
		})
		if err != nil {
			logger.Fatalf("%v", err)
		}
		logger.Printf("coordinator fronting %d workers", len(urls))
		svc = coord
	} else {
		srv, err := server.New(server.Config{
			Parallelism:  *parallel,
			CacheEntries: *cacheN,
			StorePath:    *storePath,
			Limits:       limits,
			Logf:         logf,
		})
		if err != nil {
			logger.Fatalf("%v", err)
		}
		svc = srv
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The resolved address line is machine-readable on purpose: the
	// smoke harnesses (scripts/servesmoke, scripts/fabricsmoke) parse
	// it to find a port 0 assignment.
	logger.Printf("listening on %s", ln.Addr())
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigCh
		logger.Printf("received %v, draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting requests and finish the in-flight ones...
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		// ...then drain the campaigns: wait out the budget's remainder,
		// cancel whatever is still running (queued cells never
		// simulate, in-flight ones abort mid-pipeline), and release the
		// engine.
		svc.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	// Serve returns the moment Shutdown is called; wait for the full
	// drain before exiting.
	<-drained
	logger.Printf("drained, bye")
}
