// Command ltpserved is the campaign service: a long-running HTTP/JSON
// server that executes simulations and scenario-matrix campaigns on
// one shared LPT worker pool with a content-addressed result cache, so
// identical requests — and identical cells inside overlapping
// campaigns — are computed once and served from cache thereafter.
//
// Examples:
//
//	ltpserved -addr :8080
//	ltpserved -addr 127.0.0.1:0 -parallel 8 -cache 16384
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/run -d '{"scenario":"hashjoin","max_insts":200000}'
//	curl -s -X POST 'localhost:8080/v1/matrix?stream=1' -d '{"seeds":3,"scale":0.1,"detail_insts":50000}'
//
// See API.md for the endpoint and schema reference and DESIGN.md §8
// for the service architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ltp/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		cacheN     = flag.Int("cache", 0, "result-cache entries (0 = default 4096)")
		storePath  = flag.String("store", "", "persistent result-store file (empty = in-memory cache only); results survive restarts")
		maxWarm    = flag.Uint64("max-warm", 0, "per-run warm-up instruction limit (0 = default 10M)")
		maxInsts   = flag.Uint64("max-insts", 0, "per-run detailed instruction limit (0 = default 10M)")
		maxJobs    = flag.Int("max-jobs", 0, "max concurrently active campaigns (0 = default 16)")
		runTimeout = flag.Float64("run-timeout", 0, "per-request /v1/run wall-clock limit in seconds (0 = default 300; negative disables)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM before active campaigns are cancelled")
		quiet      = flag.Bool("q", false, "suppress per-request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "ltpserved: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}

	srv, err := server.New(server.Config{
		Parallelism:  *parallel,
		CacheEntries: *cacheN,
		StorePath:    *storePath,
		Limits: server.Limits{
			MaxWarmInsts:      *maxWarm,
			MaxDetailInsts:    *maxInsts,
			MaxActiveJobs:     *maxJobs,
			RunTimeoutSeconds: *runTimeout,
		},
		Logf: logf,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The resolved address line is machine-readable on purpose: the
	// smoke harness (scripts/servesmoke) parses it to find a port 0
	// assignment.
	logger.Printf("listening on %s", ln.Addr())
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigCh
		logger.Printf("received %v, draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting requests and finish the in-flight ones...
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		// ...then drain the campaigns: wait out the budget's remainder,
		// cancel whatever is still running (queued cells never
		// simulate, in-flight ones abort mid-pipeline), and release the
		// engine.
		srv.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	// Serve returns the moment Shutdown is called; wait for the full
	// drain before exiting.
	<-drained
	logger.Printf("drained, bye")
}
