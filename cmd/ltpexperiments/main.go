// Command ltpexperiments regenerates the paper's tables and figures
// (DESIGN.md §4 lists the experiment index). Output goes to stdout and,
// with -out, to a text file per experiment.
//
// Examples:
//
//	ltpexperiments -exp table1
//	ltpexperiments -exp fig6 -insts 300000 -warm 100000
//	ltpexperiments -exp all -quick        # small budgets, ~minutes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ltp"
	"ltp/internal/experiment"
)

func main() {
	// Drain the process-wide engine (worker goroutines, result cache)
	// on exit; a no-op unless an experiment touched DefaultEngine.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ltp.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
		}
	}()
	var (
		exp     = flag.String("exp", "all", "experiment: table1, groups, fig1, fig3, fig6, fig7, fig10, fig11, uit, ablation, wibvsltp, dram, microarch, matrix, triage, snapshot, diff, all")
		scale   = flag.Float64("scale", 1.0, "workload working-set scale (0..1]")
		warm    = flag.Uint64("warm", 100_000, "warm-up instructions per run")
		insts   = flag.Uint64("insts", 300_000, "detailed instructions per run")
		quick   = flag.Bool("quick", false, "small budgets for a fast smoke campaign")
		warmMd  = flag.String("warmmode", "fast", "warm-up mode: fast (functional) or detailed (full pipeline)")
		outDir  = flag.String("out", "", "directory for per-experiment .txt outputs")
		par     = flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		seeds   = flag.Int("seeds", 3, "matrix: seed replicates per scenario x config cell")
		scns    = flag.String("scenarios", "", "matrix: comma-separated scenario families (empty = all)")
		backend = flag.String("backend", "", "execution backend for every run: cycle (default), sampled (checkpointed intervals) or model (fast estimates; oracle experiments need cycle)")
		intvls  = flag.Int("intervals", 0, "sampled backend: measured interval count K per run (0 = default)")
		triageK = flag.Int("triage", 3, "triage: cells re-run cycle-accurately after the model pre-pass (-exp triage)")
		storeF  = flag.String("store", "", "persistent result-store file: snapshot/diff read it, and diff banks fresh results in it")
		maniF   = flag.String("manifest", "", "diff: snapshot manifest file to diff against (default: the -store file's current keys)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
			}
		}()
	}

	wm, err := ltp.ParseWarmMode(*warmMd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
		os.Exit(2)
	}

	s := experiment.NewSuite(*scale, *warm, *insts)
	if *quick {
		s = experiment.QuickSuite()
		s.Quiet = false
	}
	s.WarmMode = wm
	s.Backend = *backend
	s.Intervals = *intvls
	s.Parallelism = *par

	emit := func(name, content string) {
		fmt.Println(content)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	joinTables := func(ts []*experiment.Table) string {
		var b strings.Builder
		for _, t := range ts {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
		return b.String()
	}

	run := map[string]func(){
		"table1":    func() { emit("table1", experiment.Table1()) },
		"groups":    func() { emit("groups", s.GroupsTable().String()) },
		"fig1":      func() { emit("fig1", joinTables(s.Fig1())) },
		"fig3":      func() { emit("fig3", s.Fig3().String()) },
		"fig6":      func() { emit("fig6", joinTables(s.Fig6())) },
		"fig7":      func() { emit("fig7", joinTables(s.Fig7())) },
		"fig10":     func() { emit("fig10", joinTables(s.Fig10())) },
		"fig11":     func() { emit("fig11", joinTables(s.Fig11())) },
		"uit":       func() { emit("uit", s.UITSweep().String()) },
		"ablation":  func() { emit("ablation", s.Ablation().String()) },
		"wibvsltp":  func() { emit("wibvsltp", joinTables(s.WIBvsLTP())) },
		"dram":      func() { emit("dram", s.DRAMModelStudy().String()) },
		"microarch": func() { emit("microarch", joinTables(s.Microarch())) },
		"matrix": func() {
			var list []string
			if *scns != "" {
				for _, s := range strings.Split(*scns, ",") {
					list = append(list, strings.TrimSpace(s))
				}
			}
			tab, err := s.Matrix(list, *seeds)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
				os.Exit(1)
			}
			emit("matrix", tab.String())
		},
		"triage": func() {
			var list []string
			if *scns != "" {
				for _, s := range strings.Split(*scns, ",") {
					list = append(list, strings.TrimSpace(s))
				}
			}
			tabs, err := s.TriageMatrix(list, *seeds, *triageK)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
				os.Exit(1)
			}
			emit("triage", joinTables(tabs))
		},
		"snapshot": func() {
			if *storeF == "" {
				fmt.Fprintln(os.Stderr, "ltpexperiments: -exp snapshot needs -store")
				os.Exit(2)
			}
			text, err := snapshotManifest(*storeF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
				os.Exit(1)
			}
			emit("snapshot", text)
		},
		"diff": func() {
			var list []string
			if *scns != "" {
				for _, s := range strings.Split(*scns, ",") {
					list = append(list, strings.TrimSpace(s))
				}
			}
			text, err := diffCampaign(s, list, *seeds, *par, *storeF, *maniF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltpexperiments:", err)
				os.Exit(1)
			}
			emit("diff", text)
		},
	}
	// "triage", "snapshot" and "diff" are on demand only: "all" sticks
	// to the paper's figures.
	order := []string{"table1", "groups", "fig1", "fig3", "fig6", "fig7", "fig10", "fig11", "uit", "ablation", "wibvsltp", "dram", "matrix"}

	if *exp == "all" {
		for _, name := range order {
			run[name]()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %s, all)\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	fn()
}
