package main

// Incremental campaigns: -exp snapshot freezes a result store's
// contents into a manifest (one content address per line), and
// -exp diff submits the scenario matrix with that manifest as
// SweepSpec.SinceSnapshot — banked runs stream as "cached" lines and
// never simulate, new runs stream as "new" lines and (with -store)
// are banked for the next diff. Grow the matrix between runs (-seeds,
// -scenarios, -insts) and only the delta costs anything.
//
//	ltpexperiments -exp diff -quick -store results.store -seeds 2
//	ltpexperiments -exp snapshot -store results.store > before.manifest
//	ltpexperiments -exp diff -quick -store results.store -seeds 3 -manifest before.manifest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"ltp"
	"ltp/internal/experiment"
	"ltp/internal/store"
)

// snapshotManifest renders the store's current keys as a manifest.
func snapshotManifest(path string) (string, error) {
	st, err := store.OpenRead(path)
	if err != nil {
		return "", err
	}
	defer st.Close()
	var b strings.Builder
	if err := st.WriteManifest(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// snapshotKeys loads the snapshot to diff against: the manifest file
// when given, else the store's current keys (an absent store file is
// an empty snapshot — the first diff of a campaign runs everything).
func snapshotKeys(storePath, manifestPath string) ([]string, error) {
	if manifestPath != "" {
		f, err := os.Open(manifestPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return store.ReadManifest(f)
	}
	if storePath == "" {
		return nil, fmt.Errorf("-exp diff needs -store or -manifest (a snapshot to diff against)")
	}
	st, err := store.OpenRead(storePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Keys(), nil
}

// diffCampaign runs the scenario matrix as an incremental sweep: one
// line per enumerated run, "cached" for snapshot-skipped, "new" for
// everything that executed this time, then a summary.
func diffCampaign(s *experiment.Suite, scenarios []string, seeds, parallel int, storePath, manifestPath string) (string, error) {
	snapshot, err := snapshotKeys(storePath, manifestPath)
	if err != nil {
		return "", err
	}
	sweep, err := ltp.NewMatrixSweep(ltp.MatrixSpec{
		Scenarios:   scenarios,
		Seeds:       seeds,
		Scale:       s.Scale,
		WarmInsts:   s.WarmInsts,
		DetailInsts: s.DetailInsts,
		WarmMode:    s.WarmMode,
		Backend:     s.Backend,
	})
	if err != nil {
		return "", err
	}
	sweep.SinceSnapshot = snapshot

	// The engine banks every fresh simulation in the store, so the next
	// diff's snapshot includes this run's work.
	e, err := ltp.NewEngine(ltp.EngineConfig{Parallelism: parallel, StorePath: storePath})
	if err != nil {
		return "", err
	}
	defer e.Close()
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	for c := range job.Cells() {
		status := "new"
		if c.Outcome == "cached" {
			status = "cached"
		}
		fmt.Fprintf(&b, "%-6s  %s  %s\n", status, c.Hash, strings.Join(c.Coords, "/"))
	}
	if _, err := job.Wait(); err != nil {
		return "", err
	}
	p := job.Progress()
	fmt.Fprintf(&b, "\n%d runs enumerated: %d already in the snapshot, %d executed (%d simulated, %d from store, %d from cache)\n",
		p.TotalRuns, p.SnapshotSkipped, int64(p.TotalRuns)-p.SnapshotSkipped,
		p.CacheMisses, p.StoreHits, p.CacheHits+p.CacheShared)
	return b.String(), nil
}
