package ltp_test

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"ltp"
	"ltp/internal/cache"
)

// TestSampledK1MatchesCycle pins the sampled tier's degeneration
// contract: with K=1 the single "interval" is the whole measured
// region, warmed and restored through the checkpoint machinery, and
// the result must equal a plain fast-warm cycle run bit for bit — any
// drift means the warm-state snapshot/restore or the trace replay is
// not faithful, which would silently bias every K>1 estimate too.
func TestSampledK1MatchesCycle(t *testing.T) {
	for _, base := range []ltp.RunSpec{
		{Workload: "indirect", Scale: 0.05, MaxInsts: 30_000},
		{Workload: "hashprobe", Scale: 0.05, WarmInsts: 10_000, MaxInsts: 30_000, UseLTP: true},
		{Scenario: "ptrchase", Seed: 5, Scale: 0.05, WarmInsts: 8_000, MaxInsts: 25_000},
	} {
		cspec := base
		cspec.Backend = ltp.BackendCycle
		cres, err := ltp.RunContext(context.Background(), cspec)
		if err != nil {
			t.Fatalf("%+v cycle: %v", base, err)
		}
		sspec := base
		sspec.Backend = ltp.BackendSampled
		sspec.Intervals = 1
		sres, err := ltp.RunContext(context.Background(), sspec)
		if err != nil {
			t.Fatalf("%+v sampled: %v", base, err)
		}
		if sres.Result != cres.Result {
			t.Errorf("%s%s: K=1 sampled Result diverges from cycle:\ncycle   %+v\nsampled %+v",
				base.Workload, base.Scenario, cres.Result, sres.Result)
		}
		if (sres.LTP == nil) != (cres.LTP == nil) {
			t.Fatalf("%s%s: LTP presence diverges", base.Workload, base.Scenario)
		}
		if sres.LTP != nil && *sres.LTP != *cres.LTP {
			t.Errorf("%s%s: K=1 sampled LTP stats diverge:\ncycle   %+v\nsampled %+v",
				base.Workload, base.Scenario, *cres.LTP, *sres.LTP)
		}
		if sres.Energy != cres.Energy {
			t.Errorf("%s%s: K=1 sampled energy diverges", base.Workload, base.Scenario)
		}
		if sres.Sampling == nil || sres.Sampling.Intervals != 1 {
			t.Errorf("%s%s: K=1 sampled run missing its Sampling annotation: %+v",
				base.Workload, base.Scenario, sres.Sampling)
		}
		if cres.Sampling != nil {
			t.Errorf("cycle run carries a Sampling annotation: %+v", cres.Sampling)
		}
	}
}

// TestSampledEstimateTracksCycle is the tentpole's accuracy
// differential: a K-interval sampled run's CPI estimate must cover the
// cycle backend's measured CPI within its own reported 95% confidence
// interval (plus a small epsilon for near-degenerate CIs on uniform
// kernels), and the run must report how much it actually simulated.
func TestSampledEstimateTracksCycle(t *testing.T) {
	for _, tc := range []struct {
		spec ltp.RunSpec
		k    int
	}{
		{ltp.RunSpec{Workload: "indirect", Scale: 0.1, WarmInsts: 10_000, MaxInsts: 200_000}, 8},
		{ltp.RunSpec{Workload: "mixphase", Scale: 0.1, WarmInsts: 10_000, MaxInsts: 200_000, UseLTP: true}, 8},
		{ltp.RunSpec{Scenario: "hashjoin", Seed: 3, Scale: 0.1, WarmInsts: 10_000, MaxInsts: 200_000}, 16},
	} {
		cspec := tc.spec
		cspec.Backend = ltp.BackendCycle
		cres, err := ltp.RunContext(context.Background(), cspec)
		if err != nil {
			t.Fatal(err)
		}
		sspec := tc.spec
		sspec.Backend = ltp.BackendSampled
		sspec.Intervals = tc.k
		sres, err := ltp.RunContext(context.Background(), sspec)
		if err != nil {
			t.Fatal(err)
		}
		sm := sres.Sampling
		if sm == nil || sm.Intervals != tc.k {
			t.Fatalf("%s%s: Sampling = %+v; want %d intervals", tc.spec.Workload, tc.spec.Scenario, sm, tc.k)
		}
		if sm.SampledInsts == 0 || sm.SampledInsts >= tc.spec.MaxInsts {
			t.Errorf("%s%s: sampled %d of %d instructions; want a strict fraction",
				tc.spec.Workload, tc.spec.Scenario, sm.SampledInsts, tc.spec.MaxInsts)
		}
		// The CI is the estimate's own error bar; epsilon covers
		// kernels so uniform the per-interval variance collapses.
		eps := 0.03 * cres.CPI
		if diff := math.Abs(sres.CPI - cres.CPI); diff > sm.CPI.CI95+eps {
			t.Errorf("%s%s: sampled CPI %.4f vs cycle %.4f: |diff| %.4f outside CI95 %.4f + eps %.4f",
				tc.spec.Workload, tc.spec.Scenario, sres.CPI, cres.CPI, diff, sm.CPI.CI95, eps)
		}
		t.Logf("%s%s K=%d: cycle CPI %.4f, sampled %.4f ± %.4f (sampled %d/%d insts)",
			tc.spec.Workload, tc.spec.Scenario, tc.k, cres.CPI, sres.CPI, sm.CPI.CI95, sm.SampledInsts, tc.spec.MaxInsts)
	}
}

// TestSampledSpeedup is the tentpole's wall-clock acceptance: on a
// large kernel the sampled tier must beat the cycle backend by at
// least 5x. The margin is generous at K=32 (the detailed coverage is
// 1/32 plus per-interval ramps, and functional warming is an order of
// magnitude cheaper than cycle simulation), so the bound holds on
// loaded CI machines; -short skips it.
func TestSampledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential; skipped in -short")
	}
	spec := ltp.RunSpec{Workload: "hashprobe", Scale: 0.5, WarmInsts: 50_000, MaxInsts: 2_000_000, UseLTP: true}

	spec.Backend = ltp.BackendCycle
	t0 := time.Now()
	cres, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cycleWall := time.Since(t0)

	spec.Backend = ltp.BackendSampled
	spec.Intervals = 32
	t0 = time.Now()
	sres, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sampledWall := time.Since(t0)

	speedup := cycleWall.Seconds() / sampledWall.Seconds()
	t.Logf("cycle %.2fs, sampled %.2fs: %.1fx (cycle CPI %.4f, sampled %.4f ± %.4f)",
		cycleWall.Seconds(), sampledWall.Seconds(), speedup, cres.CPI, sres.CPI, sres.Sampling.CPI.CI95)
	if speedup < 5 {
		t.Errorf("sampled speedup %.1fx below the 5x acceptance bound", speedup)
	}
	eps := 0.03 * cres.CPI
	if diff := math.Abs(sres.CPI - cres.CPI); diff > sres.Sampling.CPI.CI95+eps {
		t.Errorf("sampled CPI %.4f vs cycle %.4f outside CI95 %.4f + eps %.4f",
			sres.CPI, cres.CPI, sres.Sampling.CPI.CI95, eps)
	}
}

// TestSampledHashing pins the cache-keying rules the sampled tier
// adds: Intervals is part of a sampled cell's identity (different K =
// different cell), irrelevant to every other backend's (a cycle cell's
// hash must not depend on a leftover Intervals field), and the sampled
// tier never collides with cycle or model.
func TestSampledHashing(t *testing.T) {
	spec := ltp.RunSpec{Workload: "indirect", MaxInsts: 10_000}
	hash := func(backend string, k int) string {
		s := spec
		s.Backend = backend
		s.Intervals = k
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("hash(%s, K=%d): %v", backend, k, err)
		}
		return h
	}
	if hash(ltp.BackendCycle, 0) != hash(ltp.BackendCycle, 8) {
		t.Error("cycle cell hash depends on Intervals")
	}
	if hash(ltp.BackendModel, 0) != hash(ltp.BackendModel, 8) {
		t.Error("model cell hash depends on Intervals")
	}
	if hash(ltp.BackendSampled, 4) == hash(ltp.BackendSampled, 8) {
		t.Error("sampled cells with different K hash identically")
	}
	// Unset and explicit-default K are the same sampled cell.
	if hash(ltp.BackendSampled, 0) != hash(ltp.BackendSampled, ltp.DefaultSampledIntervals) {
		t.Error("default-K sampled cell hashes differently from explicit default")
	}
	for _, other := range []string{ltp.BackendCycle, ltp.BackendModel} {
		if hash(ltp.BackendSampled, 8) == hash(other, 0) {
			t.Errorf("sampled cell hash collides with %s", other)
		}
	}
}

// TestSampledCanceledWaiterKeepsEntry mirrors the engine single-flight
// test for the sampled backend: its interval fan-out runs through the
// engine pool (work helping), and a cancelled waiter must neither
// poison the cache entry nor strand the surviving waiter.
func TestSampledCanceledWaiterKeepsEntry(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()

	spec := ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 400_000, Backend: ltp.BackendSampled, Intervals: 4}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := e.RunCached(ctx, spec)
		errCh <- err
	}()
	resCh := make(chan error, 1)
	go func() {
		_, _, _, err := e.RunCached(context.Background(), spec)
		resCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller err = %v; want context.Canceled", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("surviving caller err = %v; want success", err)
	}
	if res, out, _, err := e.RunCached(context.Background(), spec); err != nil || out != cache.Hit {
		t.Fatalf("post-cancel resubmit = %v, %v; want hit", out, err)
	} else if res.Sampling == nil {
		t.Fatal("cached sampled result lost its Sampling annotation")
	}

	// A fully cancelled flight must store nothing: resubmitting a
	// different sampled cell after cancelling its only waiter must
	// simulate (miss), not hit a poisoned entry.
	spec2 := spec
	spec2.Intervals = 8
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		_, _, _, err := e.RunCached(ctx2, spec2)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel2()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solo caller err = %v", err)
	}
	if _, out, _, err := e.RunCached(context.Background(), spec2); err != nil || out == cache.Hit {
		t.Fatalf("resubmit after full cancellation = %v, %v; want a fresh miss", out, err)
	}
}

// TestSampledValidation: the sampled tier refuses cycle-only features
// (trace capture, oracles, detailed warm-up) loudly at Canonical time.
func TestSampledValidation(t *testing.T) {
	base := ltp.RunSpec{Workload: "indirect", MaxInsts: 10_000, Backend: ltp.BackendSampled}

	rec := base
	rec.RecordTo = io.Discard
	if _, err := rec.Canonical(); err == nil {
		t.Error("sampled run with RecordTo canonicalized")
	}
	orc := base
	orc.UseLTP, orc.Oracle = true, true
	if _, err := orc.Canonical(); err == nil {
		t.Error("sampled run with an oracle canonicalized")
	}
	det := base
	det.WarmInsts = 1_000
	det.WarmMode = ltp.WarmDetailed
	canon, err := det.Canonical()
	if err != nil {
		t.Fatalf("sampled spec with detailed warm mode: %v", err)
	}
	if canon.WarmMode != ltp.WarmFast {
		t.Errorf("sampled canonical warm mode = %v; want forced fast", canon.WarmMode)
	}
	if canon.Intervals != ltp.DefaultSampledIntervals {
		t.Errorf("sampled canonical Intervals = %d; want default %d", canon.Intervals, ltp.DefaultSampledIntervals)
	}

	cyc := base
	cyc.Backend = ltp.BackendCycle
	cyc.Intervals = 8
	canon, err = cyc.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Intervals != 0 {
		t.Errorf("cycle canonical keeps Intervals = %d; want 0", canon.Intervals)
	}
}

// TestSampledSweepAxis drives the sampled tier through the sweep
// surface as a fidelity-axis point next to cycle and model, and pins
// the replicate-pooling exclusion (a replicate axis may not patch the
// backend to sampled any more than to model).
func TestSampledSweepAxis(t *testing.T) {
	// Samples must be long enough to amortize the per-interval
	// pipeline-fill transient (a fresh pipeline ramps for ~ROB-size
	// instructions), and a warm budget keeps interval 0 from measuring
	// the cold-start spike as if it were representative — the cell is
	// sized the way the tier is meant to be used.
	intervals := 4
	sweep := ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "gemmblock", Scale: 0.05, WarmInsts: 10_000, MaxInsts: 100_000},
		Axes: []ltp.SweepAxis{{
			Name: "fidelity",
			Points: []ltp.SweepPoint{
				{Name: "cycle", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendCycle)}},
				{Name: "sampled", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendSampled), Intervals: &intervals}},
				{Name: "model", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendModel)}},
			},
		}},
	}
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("sweep produced %d cells; want 3", len(res.Cells))
	}
	byName := map[string]ltp.SweepCell{}
	for _, c := range res.Cells {
		byName[c.Coords[0]] = c
	}
	for name, backend := range map[string]string{"cycle": "cycle", "sampled": "sampled", "model": "model"} {
		if got := byName[name].Backend; got != backend {
			t.Errorf("cell %q tagged backend %q; want %q", name, got, backend)
		}
	}
	cycleCPI, sampledCPI := byName["cycle"].CPI.Mean, byName["sampled"].CPI.Mean
	if math.Abs(sampledCPI-cycleCPI)/cycleCPI > 0.10 {
		t.Errorf("sampled sweep cell CPI %.4f vs cycle %.4f drifts more than 10%%", sampledCPI, cycleCPI)
	}

	bad := sweep
	bad.Axes = append([]ltp.SweepAxis{}, sweep.Axes...)
	bad.Axes[0] = ltp.SweepAxis{
		Name:      "reps",
		Replicate: true,
		Points: []ltp.SweepPoint{
			{Name: "a", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendSampled)}},
			{Name: "b", Patch: ltp.RunPatch{}},
		},
	}
	if _, err := bad.Canonical(); err == nil {
		t.Error("replicate axis patching the backend to sampled was admitted")
	}

	k := 4
	bad.Axes[0] = ltp.SweepAxis{
		Name:      "reps",
		Replicate: true,
		Points: []ltp.SweepPoint{
			{Name: "a", Patch: ltp.RunPatch{Intervals: &k}},
			{Name: "b", Patch: ltp.RunPatch{}},
		},
	}
	if _, err := bad.Canonical(); err == nil {
		t.Error("replicate axis patching intervals was admitted")
	}
}

// TestSampledTriageDetail: a triage sweep whose cells select the
// sampled backend runs its detailed phase at the sampled tier.
func TestSampledTriageDetail(t *testing.T) {
	sweep := triageSweep(1)
	sweep.Base.Backend = ltp.BackendSampled
	sweep.Base.Intervals = 2
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Triage == nil || len(res.Triage.Detailed) != 1 {
		t.Fatalf("triage result = %+v; want one detailed cell", res.Triage)
	}
	if got := res.Triage.Detailed[0].Backend; got != ltp.BackendSampled {
		t.Errorf("detailed cell backend = %q; want sampled", got)
	}
}
