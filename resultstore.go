package ltp

// The persistent tier of the engine's result cache: an internal/store
// log layered behind the in-memory LRU via cache.Backing, so a cell
// simulated by any earlier process with the same store survives
// restarts and deploys. Records are content-addressed by the run's
// hash and carry the canonical spec alongside the result — the store
// is self-describing provenance, not just a blob cache.

import (
	"encoding/json"

	"ltp/internal/store"
)

// storedRecord is the JSON payload of one store record: the content
// address it is filed under, the canonical spec that produced it (for
// provenance and offline tooling), and the result itself.
type storedRecord struct {
	Key    string    `json:"key"`
	Spec   RunSpec   `json:"spec"`
	Result RunResult `json:"result"`
}

// cachedCell is the engine's cache value: the result plus the
// canonical spec, kept so a fresh computation can be persisted with
// its provenance without re-canonicalizing.
type cachedCell struct {
	spec RunSpec // canonical
	res  RunResult
}

// storeBacking adapts an internal/store to cache.Backing. Lookup
// decodes a record back into the cache's value shape; any decode
// drift — malformed JSON, a key mismatch from a hash-version change —
// degrades to a miss (re-simulate) rather than an error, because a
// persistent file outlives code that wrote it. Store marshals and
// appends; a failed append is absorbed (the in-memory result already
// serves every waiter, and the append will be retried by whichever
// future process simulates the cell again).
type storeBacking struct{ st *store.Store }

func (b storeBacking) Lookup(key string) (any, bool) {
	payload, ok := b.st.Get(key)
	if !ok {
		return nil, false
	}
	var rec storedRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Key != key {
		return nil, false
	}
	return cachedCell{spec: rec.Spec, res: rec.Result}, true
}

func (b storeBacking) Store(key string, val any) {
	cell, ok := val.(cachedCell)
	if !ok {
		return
	}
	payload, err := json.Marshal(storedRecord{Key: key, Spec: cell.spec, Result: cell.res})
	if err != nil {
		return
	}
	_ = b.st.Put(key, payload)
}

// StoreStats returns a snapshot of the persistent result store's
// counters, and whether the engine has one (EngineConfig.StorePath).
func (e *Engine) StoreStats() (store.Stats, bool) {
	if e.store == nil {
		return store.Stats{}, false
	}
	return e.store.Stats(), true
}

// StoreKeys returns the sorted content addresses held by the
// persistent result store (nil without one) — the live form of a
// snapshot manifest, ready for SweepSpec.SinceSnapshot.
func (e *Engine) StoreKeys() []string {
	if e.store == nil {
		return nil
	}
	return e.store.Keys()
}
