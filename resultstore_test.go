package ltp_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"ltp"
	"ltp/internal/store"
)

// storeSpecs is one tiny cell per backend: the differential below must
// hold for every fidelity tier, since all three flow through the same
// cache key space and the same stored-record shape.
func storeSpecs() []ltp.RunSpec {
	return []ltp.RunSpec{
		{Scenario: "branchy", Scale: 0.05, MaxInsts: 5_000},
		{Scenario: "branchy", Scale: 0.05, MaxInsts: 5_000, Backend: ltp.BackendModel},
		{Scenario: "ptrchase", Scale: 0.05, MaxInsts: 40_000, Backend: ltp.BackendSampled, Intervals: 4},
	}
}

// TestStoreWarmEngineDifferential holds the tentpole acceptance
// criterion: an engine warmed from a store written by an earlier
// engine returns byte-identical RunResults for all three backends
// without re-simulating anything — zero cache misses, every cell a
// store hit.
func TestStoreWarmEngineDifferential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	specs := storeSpecs()

	cold := newTestEngine(t, ltp.EngineConfig{Parallelism: 2, StorePath: path})
	want := make([]ltp.RunResult, len(specs))
	for i, spec := range specs {
		res, outcome, _, err := cold.RunCached(context.Background(), spec)
		if err != nil {
			t.Fatalf("cold run %d: %v", i, err)
		}
		if outcome.String() != "miss" {
			t.Fatalf("cold run %d outcome %q; want miss", i, outcome)
		}
		want[i] = res
	}
	if st, ok := cold.StoreStats(); !ok || st.Appends != uint64(len(specs)) {
		t.Fatalf("cold store stats %+v, ok=%v; want %d appends", st, ok, len(specs))
	}
	cold.Close()

	warm := newTestEngine(t, ltp.EngineConfig{Parallelism: 2, StorePath: path})
	defer warm.Close()
	for i, spec := range specs {
		res, outcome, _, err := warm.RunCached(context.Background(), spec)
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if outcome.String() != "store" {
			t.Fatalf("warm run %d outcome %q; want store", i, outcome)
		}
		if !reflect.DeepEqual(res, want[i]) {
			t.Fatalf("warm run %d result drifted through the store:\ncold: %+v\nwarm: %+v", i, want[i], res)
		}
	}
	cs := warm.CacheStats()
	if cs.Misses != 0 || cs.StoreHits != uint64(len(specs)) {
		t.Fatalf("warm cache stats %+v; want zero misses, %d store hits", cs, len(specs))
	}
	ss, ok := warm.StoreStats()
	if !ok || ss.Hits != uint64(len(specs)) || ss.Appends != 0 {
		t.Fatalf("warm store stats %+v; want %d hits, no appends", ss, len(specs))
	}
	if keys := warm.StoreKeys(); len(keys) != len(specs) {
		t.Fatalf("StoreKeys = %d addresses; want %d", len(keys), len(specs))
	}
}

// TestStoreWarmSweep runs a whole campaign against a store, restarts
// the engine, resubmits, and demands cell-identical aggregates with
// zero simulations.
func TestStoreWarmSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.store")
	sweep, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}

	cold := newTestEngine(t, ltp.EngineConfig{Parallelism: 4, StorePath: path})
	job, err := cold.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	cold.Close()

	warm := newTestEngine(t, ltp.EngineConfig{Parallelism: 4, StorePath: path})
	defer warm.Close()
	job2, err := warm.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted campaign drifted:\ncold: %+v\nwarm: %+v", want, got)
	}
	p := job2.Progress()
	if p.CacheMisses != 0 || p.StoreHits != int64(p.TotalRuns) {
		t.Fatalf("warm progress %+v; want every run a store hit", p)
	}
}

// TestSweepSinceSnapshotFullSkip submits a sweep whose entire
// enumeration is in the snapshot: nothing executes, every run streams
// as an Outcome "cached" cell, and the aggregate still carries each
// cell's coordinates.
func TestSweepSinceSnapshotFullSkip(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	sweep, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	sweep.SinceSnapshot = sweepRunHashes(t, sweep)

	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for c := range job.Cells() {
		if c.Outcome != "cached" {
			t.Fatalf("cell %d outcome %q; want cached", c.Index, c.Outcome)
		}
		if c.Hash == "" || len(c.Coords) != 3 {
			t.Fatalf("skipped cell lost its identity: %+v", c)
		}
		cached++
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	p := job.Progress()
	if cached != p.TotalRuns || p.SnapshotSkipped != int64(p.TotalRuns) || p.DoneRuns != p.TotalRuns {
		t.Fatalf("progress %+v with %d cached cells; want all %d skipped", p, cached, p.TotalRuns)
	}
	if p.CacheMisses != 0 || p.CacheHits != 0 {
		t.Fatalf("fully skipped sweep still touched the cache: %+v", p)
	}
	for _, c := range res.Cells {
		if len(c.Coords) != 2 {
			t.Fatalf("skipped cell has no coordinates: %+v", c)
		}
		if c.Replicates != 0 {
			t.Fatalf("skipped cell claims %d replicates", c.Replicates)
		}
	}
}

// TestSweepSinceSnapshotPartialSkip pins the incremental-campaign
// semantics: only the runs outside the snapshot simulate, and their
// cells aggregate normally while snapshot cells stay empty.
func TestSweepSinceSnapshotPartialSkip(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	sweep, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	hashes := sweepRunHashes(t, sweep)
	sweep.SinceSnapshot = hashes[:len(hashes)/2]

	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	p := job.Progress()
	skipped := int64(len(hashes) / 2)
	if p.SnapshotSkipped != skipped {
		t.Fatalf("progress %+v; want %d snapshot-skipped", p, skipped)
	}
	if p.CacheMisses != int64(p.TotalRuns)-skipped {
		t.Fatalf("progress %+v; want the other %d runs simulated", p, int64(p.TotalRuns)-skipped)
	}
	var withData int
	for _, c := range res.Cells {
		if len(c.Coords) != 2 {
			t.Fatalf("cell lost coordinates: %+v", c)
		}
		if c.Replicates > 0 {
			withData++
		}
	}
	if withData == 0 || withData == len(res.Cells) {
		t.Fatalf("partial skip produced %d/%d populated cells; want a strict mix", withData, len(res.Cells))
	}
}

// TestSweepSinceSnapshotHash checks the address semantics: a real
// snapshot changes the sweep hash (a diffed campaign runs different
// work), while foreign hashes normalize away entirely — spec and
// address both collapse to the snapshot-free sweep.
func TestSweepSinceSnapshotHash(t *testing.T) {
	base, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	diffed := base
	diffed.SinceSnapshot = sweepRunHashes(t, base)[:1]
	hd, err := diffed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hd == h0 {
		t.Fatal("snapshot did not change the sweep hash")
	}

	foreign := base
	foreign.SinceSnapshot = []string{"rs2:not-a-real-cell", "garbage"}
	canon, err := foreign.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if len(canon.SinceSnapshot) != 0 {
		t.Fatalf("foreign hashes survived normalization: %v", canon.SinceSnapshot)
	}
	if hf, _ := foreign.Hash(); hf != h0 {
		t.Fatalf("foreign-hash snapshot perturbed the address: %s vs %s", hf, h0)
	}
}

// TestSweepSinceSnapshotRejectsTriage: a triage ranking over a
// partially skipped population would be meaningless.
func TestSweepSinceSnapshotRejectsTriage(t *testing.T) {
	sweep, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	sweep.Triage = &ltp.TriageSpec{TopK: 1}
	sweep.SinceSnapshot = []string{"rs2:anything"}
	if _, err := sweep.Canonical(); err == nil {
		t.Fatal("triage sweep with since_snapshot accepted")
	}
}

// sweepRunHashes enumerates a sweep's run addresses the way campaign
// diffing does: one single-cell canonical hash per enumerated run.
func sweepRunHashes(t *testing.T, sweep ltp.SweepSpec) []string {
	t.Helper()
	hashes, err := sweep.RunHashes()
	if err != nil {
		t.Fatal(err)
	}
	return hashes
}

// TestStoreHashVersionDrift holds the cross-version compatibility
// contract: a store file written under an older run-spec hash version
// (rs2-keyed records, or a record whose embedded key no longer matches
// its physical address) must degrade to clean cache misses when
// reopened under rs3 — the engine re-simulates and appends fresh
// records, and none of the old ones are miscounted as corruption.
// CorruptSkipped is reserved for damaged log suffixes; decode drift is
// a semantic miss, not file damage.
func TestStoreHashVersionDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.store")
	spec := ltp.RunSpec{Scenario: "branchy", Scale: 0.05, MaxInsts: 5_000}
	key, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Forge the older-era file: two well-formed records under rs2-style
	// keys, plus one record sitting AT the spec's rs3 address whose
	// embedded key field disagrees with it — the exact shape a
	// hash-version migration leaves behind.
	old, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"rs2:0a0a", "rs2:0b0b"} {
		payload, _ := json.Marshal(map[string]any{"key": k, "spec": map[string]any{}, "result": map[string]any{}})
		if err := old.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	drifted, _ := json.Marshal(map[string]any{"key": "rs2:0a0a", "spec": map[string]any{}, "result": map[string]any{}})
	if err := old.Put(key, drifted); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2, StorePath: path})
	defer e.Close()
	ss, ok := e.StoreStats()
	if !ok {
		t.Fatal("engine has no store")
	}
	if ss.CorruptSkipped != 0 {
		t.Fatalf("decode drift miscounted as corruption: CorruptSkipped = %d", ss.CorruptSkipped)
	}
	if ss.Records != 3 {
		t.Fatalf("reopened store holds %d records; want 3", ss.Records)
	}

	res, outcome, _, err := e.RunCached(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.String() != "miss" {
		t.Fatalf("outcome %q; want a clean miss past the drifted record", outcome)
	}
	if res.CPI <= 0 {
		t.Fatalf("re-simulated result is empty: %+v", res)
	}

	// Same engine, second ask: the in-memory cache now serves it.
	_, outcome2, _, err := e.RunCached(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if outcome2.String() != "hit" {
		t.Fatalf("second outcome %q; want hit", outcome2)
	}
	if ss, _ = e.StoreStats(); ss.CorruptSkipped != 0 {
		t.Fatalf("CorruptSkipped drifted to %d after the run", ss.CorruptSkipped)
	}
}
