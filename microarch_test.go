package ltp_test

import (
	"context"
	"strings"
	"testing"

	"ltp"
	"ltp/internal/pipeline"
	"ltp/internal/workload"
)

// TestTAGEBeatsGshareOnBranchy is the predictor axis's end-to-end
// differential: on the branchy scenario at maximum entropy, TAGE's
// geometric history tables must resolve the data-dependent pattern
// that aliases out of gshare's single fixed-length history. The
// simulator is deterministic, so the margin asserted here (TAGE under
// 60% of gshare's mispredicts, measured rates ~0.03 vs ~0.15) is a
// regression fence, not a statistical bet.
func TestTAGEBeatsGshareOnBranchy(t *testing.T) {
	run := func(bp string) ltp.RunResult {
		t.Helper()
		return ltp.MustRun(ltp.RunSpec{
			Scenario:   "branchy",
			Knobs:      &workload.Knobs{FootprintWords: 512, BranchEntropy: 0.5},
			Scale:      1.0,
			WarmInsts:  50_000,
			MaxInsts:   150_000,
			BranchPred: bp,
		})
	}
	g := run("gshare")
	ta := run("tage")
	if g.Branches == 0 || ta.Branches == 0 {
		t.Fatalf("no branches simulated: gshare %d, tage %d", g.Branches, ta.Branches)
	}
	gr := float64(g.Mispredicts) / float64(g.Branches)
	tr := float64(ta.Mispredicts) / float64(ta.Branches)
	if tr >= 0.6*gr {
		t.Fatalf("TAGE mispredict rate %.4f not clearly below gshare %.4f", tr, gr)
	}
	if ta.CPI >= g.CPI {
		t.Fatalf("TAGE CPI %.3f not below gshare CPI %.3f on a branch-bound kernel", ta.CPI, g.CPI)
	}
}

// TestCorunnerDeterminism pins the contention subsystem's determinism
// contract: the captured-traffic replay is part of the content-
// addressed spec, so the same spec must produce identical Stats every
// run — and must actually perturb the solo baseline.
func TestCorunnerDeterminism(t *testing.T) {
	spec := ltp.RunSpec{
		Scenario:  "ptrchase",
		Scale:     0.1,
		WarmInsts: 20_000,
		MaxInsts:  80_000,
		UseLTP:    true,
		Corunners: []ltp.Corunner{{Scenario: "memhog"}},
	}
	a := ltp.MustRun(spec)
	b := ltp.MustRun(spec)
	if a.Result != b.Result {
		t.Fatalf("co-runner run is not deterministic:\n%+v\n%+v", a.Result, b.Result)
	}
	if (a.LTP == nil) != (b.LTP == nil) || (a.LTP != nil && *a.LTP != *b.LTP) {
		t.Fatalf("co-runner LTP stats diverge across identical runs")
	}
	if a.CorunnerAccesses == 0 {
		t.Fatal("co-runner attached but replayed zero accesses")
	}
	solo := spec
	solo.Corunners = nil
	s := ltp.MustRun(solo)
	if s.CorunnerAccesses != 0 {
		t.Fatalf("solo run reports %d co-runner accesses", s.CorunnerAccesses)
	}
	if a.CPI <= s.CPI {
		t.Fatalf("memhog co-runner did not raise CPI: contended %.3f vs solo %.3f", a.CPI, s.CPI)
	}
}

// TestCorunnerLTPDelta is the contention subsystem's reason to exist:
// parking non-critical work matters most when the shared hierarchy is
// under pressure. On hashjoin, LTP is roughly neutral solo but must
// buy strictly more CPI when a memhog co-runner is hammering the
// shared LLC, MSHRs and DRAM banks.
func TestCorunnerLTPDelta(t *testing.T) {
	run := func(hog, useLTP bool) float64 {
		t.Helper()
		spec := ltp.RunSpec{
			Scenario:  "hashjoin",
			Scale:     0.1,
			WarmInsts: 20_000,
			MaxInsts:  80_000,
			UseLTP:    useLTP,
		}
		if hog {
			spec.Corunners = []ltp.Corunner{{Scenario: "memhog", Intensity: 1024}}
		}
		return ltp.MustRun(spec).CPI
	}
	dSolo := run(false, false) - run(false, true)
	dHog := run(true, false) - run(true, true)
	if dHog <= dSolo {
		t.Fatalf("LTP CPI delta under memhog co-runner (%.3f) not larger than solo (%.3f)",
			dHog, dSolo)
	}
	if dHog <= 0 {
		t.Fatalf("LTP did not help at all under contention (delta %.3f)", dHog)
	}
}

// TestSampledK1Corunner extends the K=1 degeneration contract to
// contended runs: co-runner replay state (private L1D, pattern index,
// credit) rides through the checkpoint clone machinery, so a K=1
// sampled run of a contended spec must equal the cycle run bit for
// bit. Any drift means co-runner state is not faithfully cloned.
func TestSampledK1Corunner(t *testing.T) {
	base := ltp.RunSpec{
		Scenario:  "ptrchase",
		Seed:      5,
		Scale:     0.05,
		WarmInsts: 8_000,
		MaxInsts:  25_000,
		UseLTP:    true,
		Corunners: []ltp.Corunner{{Scenario: "memhog"}},
	}
	cspec := base
	cspec.Backend = ltp.BackendCycle
	cres, err := ltp.RunContext(context.Background(), cspec)
	if err != nil {
		t.Fatalf("cycle: %v", err)
	}
	sspec := base
	sspec.Backend = ltp.BackendSampled
	sspec.Intervals = 1
	sres, err := ltp.RunContext(context.Background(), sspec)
	if err != nil {
		t.Fatalf("sampled: %v", err)
	}
	if sres.Result != cres.Result {
		t.Errorf("K=1 sampled Result diverges from cycle under contention:\ncycle   %+v\nsampled %+v",
			cres.Result, sres.Result)
	}
	if sres.LTP != nil && cres.LTP != nil && *sres.LTP != *cres.LTP {
		t.Errorf("K=1 sampled LTP stats diverge under contention")
	}
	if cres.CorunnerAccesses == 0 {
		t.Fatal("contended cycle run replayed zero co-runner accesses")
	}
}

// TestMicroarchAxisHashing holds the rs3 canonicalization contract for
// the new sweep axes: every axis value is a distinct content address,
// and default spellings collapse onto the unset form so cache hits
// cross spelling variants.
func TestMicroarchAxisHashing(t *testing.T) {
	hash := func(s ltp.RunSpec) string {
		t.Helper()
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 50_000}

	// Within each axis, every value hashes distinctly. (Across axes the
	// default spellings — gshare, stride — intentionally collapse onto
	// the base address; that collapse is asserted below.)
	var all []string
	distinct := func(axis string, hashes map[string]string) {
		t.Helper()
		rev := map[string]string{}
		for label, h := range hashes {
			if prev, ok := rev[h]; ok {
				t.Fatalf("%s values %q and %q collide on %s", axis, prev, label, h)
			}
			rev[h] = label
			all = append(all, h)
		}
	}
	bpHashes := map[string]string{}
	for _, bp := range ltp.BranchPredictors() {
		s := base
		s.BranchPred = bp
		bpHashes[bp] = hash(s)
	}
	distinct("branch predictor", bpHashes)
	pfHashes := map[string]string{}
	for _, pf := range ltp.Prefetchers() {
		s := base
		s.Prefetcher = pf
		pfHashes[pf] = hash(s)
	}
	distinct("prefetcher", pfHashes)
	cor := base
	cor.Corunners = []ltp.Corunner{{Scenario: "memhog"}}
	cor2 := base
	cor2.Corunners = []ltp.Corunner{{Scenario: "memhog", Intensity: 512}}
	distinct("co-runner", map[string]string{
		"solo": hash(base), "memhog": hash(cor), "memhog/512": hash(cor2),
	})

	// Default spellings are the unset form: gshare and stride are the
	// Table 1 baseline, so naming them cannot change the address.
	h0 := hash(base)
	g := base
	g.BranchPred = "gshare"
	if hash(g) != h0 {
		t.Fatal("explicit gshare hashes differently from the default")
	}
	st := base
	st.Prefetcher = "stride"
	if hash(st) != h0 {
		t.Fatal("explicit stride hashes differently from the default")
	}

	// RunSpec.BranchPred and Pipeline.BranchPred are the same axis.
	viaSpec := base
	viaSpec.BranchPred = "tage"
	pcfg := pipeline.DefaultConfig()
	pcfg.BranchPred = "tage"
	viaPipe := base
	viaPipe.Pipeline = &pcfg
	if hash(viaSpec) != hash(viaPipe) {
		t.Fatal("RunSpec.BranchPred and Pipeline.BranchPred hash differently")
	}

	// An explicitly-defaulted co-runner equals its shorthand.
	corDefault := base
	corDefault.Corunners = []ltp.Corunner{{
		Scenario:  "memhog",
		Intensity: ltp.DefaultCorunnerIntensity,
		Accesses:  ltp.DefaultCorunnerAccesses,
	}}
	if hash(corDefault) != hash(cor) {
		t.Fatal("explicit co-runner defaults hash differently from the shorthand")
	}

	for _, h := range all {
		if !strings.HasPrefix(h, "rs3:") {
			t.Fatalf("hash %q missing the rs3 version prefix", h)
		}
	}
}

// TestMicroarchAxisValidation rejects malformed axis values before any
// simulation runs.
func TestMicroarchAxisValidation(t *testing.T) {
	base := ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 10_000}
	for _, tc := range []struct {
		name string
		mut  func(*ltp.RunSpec)
	}{
		{"unknown predictor", func(s *ltp.RunSpec) { s.BranchPred = "perceptron" }},
		{"unknown prefetcher", func(s *ltp.RunSpec) { s.Prefetcher = "ghb" }},
		{"unknown co-runner family", func(s *ltp.RunSpec) {
			s.Corunners = []ltp.Corunner{{Scenario: "nosuch"}}
		}},
		{"too many co-runners", func(s *ltp.RunSpec) {
			for i := 0; i <= ltp.MaxCorunners; i++ {
				s.Corunners = append(s.Corunners, ltp.Corunner{Scenario: "memhog"})
			}
		}},
	} {
		s := base
		tc.mut(&s)
		if _, err := s.Hash(); err == nil {
			t.Errorf("%s: Hash accepted the spec", tc.name)
		}
		if _, err := ltp.RunContext(context.Background(), s); err == nil {
			t.Errorf("%s: RunContext accepted the spec", tc.name)
		}
	}
}
