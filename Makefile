# Makefile — developer entry points. The go toolchain is the only
# dependency.

.PHONY: build test test-short race bench bench-fig bench-baseline profile vet matrix fuzz-trace fuzz-store fuzz-fabric serve smoke-serve smoke-fabric lint-docs audit api-update

# Packages whose exported symbols must all carry godoc comments (the
# public package, the documented internals, and the service layers).
DOC_PKGS = . internal/trace internal/workload internal/sched internal/stats internal/cache internal/server internal/sim internal/model internal/store internal/fabric internal/fabric/faultproxy internal/bpred

build:
	go build ./...

vet:
	go vet ./...

# Full test suite, including the slow campaign smoke (minutes).
test:
	go test ./...

# The CI gate: under two minutes, race-clean.
test-short:
	go test -short -race ./...

race: test-short

# Every benchmark once (the figure benches double as the smoke campaign).
bench:
	go test -run='^$$' -bench=. -benchtime=1x .

# Just the figure campaign (the wall-clock acceptance metric).
bench-fig:
	go test -run='^$$' -bench=Fig -benchtime=1x .

# Record a BENCH_<n>.json trajectory point (see EXPERIMENTS.md).
bench-baseline:
	sh scripts/record_bench.sh

# Profile a representative campaign: CPU + allocation profiles of the
# matrix experiment land in ./profiles for go tool pprof.
profile:
	mkdir -p profiles
	go run ./cmd/ltpexperiments -exp matrix -quick -cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof
	@echo "profiles written: go tool pprof profiles/cpu.pprof"

# The scenario-matrix campaign at laptop-scale budgets (mean ± 95% CI
# over seed replicates; see EXPERIMENTS.md "Scenario-matrix workflow").
matrix:
	go run ./cmd/ltpexperiments -exp matrix -seeds 5

# Fuzz the trace codec for a minute.
fuzz-trace:
	go test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=60s ./internal/trace/

# Fuzz the persistent result store for a minute: derived records must
# round-trip bit-identically, and arbitrary bytes opened as a store
# file must never panic (DESIGN.md §12).
fuzz-store:
	go test -run='^$$' -fuzz=FuzzStoreRoundTrip -fuzztime=60s ./internal/store/

# Fuzz the coordinator's worker-response decoders for a minute:
# arbitrary bytes off the wire — cell-event streams and stats bodies —
# must error, never panic (DESIGN.md §13).
fuzz-fabric:
	go test -run='^$$' -fuzz=FuzzWorkerDecode -fuzztime=60s ./internal/fabric/

# The campaign service (API.md documents the endpoints; DESIGN.md §8
# the architecture). Ctrl-C drains gracefully.
serve:
	go run ./cmd/ltpserved -addr :8080

# End-to-end service smoke: build + boot ltpserved, submit a quick
# matrix twice, assert the resubmission is served from the cache, then
# SIGKILL a store-backed server and assert the restart serves the same
# campaign entirely from disk.
smoke-serve:
	go run ./scripts/servesmoke

# End-to-end fabric smoke: boot 1 coordinator + 3 worker processes,
# SIGKILL a worker mid-campaign, assert the campaign completes with
# every cell delivered exactly once (DESIGN.md §13).
smoke-fabric:
	go run ./scripts/fabricsmoke

# The CI docs gate: vet plus the missing-godoc check on DOC_PKGS.
lint-docs:
	go vet ./...
	go run ./scripts/godoclint $(DOC_PKGS)

# The CI hygiene gate: formatting, vet, and the exported-API snapshot
# (scripts/apidiff fails on any undocumented breaking change to the
# public package; regenerate deliberately with `make api-update`).
audit:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go run ./scripts/apidiff

# Regenerate api.txt after a deliberate public-API change.
api-update:
	go run ./scripts/apidiff -update
