package ltp_test

import (
	"testing"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
)

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := ltp.Run(ltp.RunSpec{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestWorkloadsRegistry(t *testing.T) {
	if len(ltp.Workloads()) < 12 {
		t.Fatalf("registry too small: %d", len(ltp.Workloads()))
	}
	if _, err := ltp.WorkloadByName("indirect"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselineSmoke(t *testing.T) {
	r, err := ltp.Run(ltp.RunSpec{
		Workload: "gather", Scale: 0.05,
		WarmInsts: 10_000, MaxInsts: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 30_000 || r.CPI <= 0 {
		t.Errorf("bad result: %v", r.Result)
	}
	if r.LTP != nil {
		t.Error("baseline run reported LTP stats")
	}
	if r.Energy.IQ <= 0 || r.Energy.RF <= 0 {
		t.Error("energy model not evaluated")
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := ltp.RunSpec{
		Workload: "indirectwork", Scale: 0.05,
		WarmInsts: 10_000, MaxInsts: 30_000, UseLTP: true,
	}
	a := ltp.MustRun(spec)
	b := ltp.MustRun(spec)
	if a.Cycles != b.Cycles || a.MLP != b.MLP {
		t.Errorf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// The headline reproduction check: on an MLP-sensitive kernel with the
// small core (IQ:32/RF:96), LTP must recover a large share of the big
// baseline's performance (paper Fig. 6/10).
func TestLTPRecoversSmallCorePerformance(t *testing.T) {
	small := pipeline.DefaultConfig()
	small.IQSize = 32
	small.IntRegs, small.FPRegs = 96, 96

	mk := func(useLTP bool, cfg pipeline.Config) ltp.RunResult {
		return ltp.MustRun(ltp.RunSpec{
			Workload: "indirectwork", Scale: 0.1,
			WarmInsts: 30_000, MaxInsts: 80_000,
			Pipeline: &cfg, UseLTP: useLTP,
		})
	}
	base := mk(false, pipeline.DefaultConfig())
	noLTP := mk(false, small)
	withLTP := mk(true, small)

	if noLTP.Cycles <= base.Cycles {
		t.Skip("small core unexpectedly not slower; workload scaling issue")
	}
	if withLTP.Cycles >= noLTP.Cycles {
		t.Errorf("LTP did not help the small core: %d vs %d cycles", withLTP.Cycles, noLTP.Cycles)
	}
	// LTP must close at least half of the gap to the big baseline.
	gap := float64(noLTP.Cycles - base.Cycles)
	closed := float64(noLTP.Cycles - withLTP.Cycles)
	if closed < 0.5*gap {
		t.Errorf("LTP closed only %.0f%% of the small-core gap", 100*closed/gap)
	}
}

func TestMonitorKeepsLTPOffOnCompute(t *testing.T) {
	r := ltp.MustRun(ltp.RunSpec{
		Workload: "compute", Scale: 0.05,
		WarmInsts: 5_000, MaxInsts: 20_000, UseLTP: true,
	})
	if r.LTP == nil {
		t.Fatal("no LTP stats")
	}
	if r.LTP.EnabledFrac > 0.02 {
		t.Errorf("LTP enabled %.0f%% on compute-bound code", r.LTP.EnabledFrac*100)
	}
	if r.LTP.ParkedTotal != 0 {
		t.Errorf("%d parked on compute-bound code", r.LTP.ParkedTotal)
	}
}

func TestOracleMode(t *testing.T) {
	lcfg := core.DefaultConfig()
	lcfg.Mode = core.ModeNRNU
	lcfg.Entries, lcfg.Ports = 0, 0
	r := ltp.MustRun(ltp.RunSpec{
		Workload: "gather", Scale: 0.05,
		WarmInsts: 10_000, MaxInsts: 30_000,
		UseLTP: true, LTP: &lcfg, Oracle: true,
	})
	if r.LTP == nil || r.LTP.ParkedTotal == 0 {
		t.Error("oracle mode parked nothing on a gather kernel")
	}
}

// TestWarmupEquivalence is the fast-warm acceptance gate: on two
// workloads, the measured-region CPI after the functional fast warm-up
// must agree with the detailed (full pipeline) warm-up within 1%, with
// and without the LTP attached. If this breaks, a warm hook has drifted
// from what the pipeline actually trains.
func TestWarmupEquivalence(t *testing.T) {
	for _, tc := range []struct {
		workload string
		useLTP   bool
	}{
		{"indirectwork", false},
		{"indirectwork", true},
		{"gather", false},
		{"gather", true},
	} {
		name := tc.workload
		if tc.useLTP {
			name += "+ltp"
		}
		t.Run(name, func(t *testing.T) {
			cfg := pipeline.DefaultConfig()
			cfg.IQSize = 32
			cfg.IntRegs, cfg.FPRegs = 96, 96
			run := func(wm ltp.WarmMode) ltp.RunResult {
				return ltp.MustRun(ltp.RunSpec{
					Workload: tc.workload, Scale: 0.1,
					WarmInsts: 40_000, MaxInsts: 80_000, WarmMode: wm,
					Pipeline: &cfg, UseLTP: tc.useLTP,
				})
			}
			fast := run(ltp.WarmFast)
			detailed := run(ltp.WarmDetailed)
			if detailed.CPI <= 0 {
				t.Fatalf("detailed warm produced CPI %v", detailed.CPI)
			}
			rel := fast.CPI/detailed.CPI - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.01 {
				t.Errorf("fast-warm CPI %.4f vs detailed-warm CPI %.4f: %.2f%% apart (want <1%%)",
					fast.CPI, detailed.CPI, rel*100)
			}
		})
	}
}

// TestWarmModeString pins the flag-facing names.
func TestWarmModeString(t *testing.T) {
	if ltp.WarmFast.String() != "fast" || ltp.WarmDetailed.String() != "detailed" {
		t.Error("warm mode names changed")
	}
	if _, err := ltp.ParseWarmMode("nope"); err == nil {
		t.Error("ParseWarmMode accepted garbage")
	}
	if m, err := ltp.ParseWarmMode("detailed"); err != nil || m != ltp.WarmDetailed {
		t.Error("ParseWarmMode(detailed) wrong")
	}
}

func TestCustomProgram(t *testing.T) {
	wl, _ := ltp.WorkloadByName("stream")
	r, err := ltp.Run(ltp.RunSpec{
		Program:   wl.Build(0.05),
		WarmInsts: 5_000, MaxInsts: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 20_000 {
		t.Errorf("committed %d", r.Committed)
	}
}
