// Command servesmoke is the end-to-end smoke test behind
// `make smoke-serve`: it builds cmd/ltpserved, boots it on a free
// port, submits a quick matrix campaign twice, and fails unless the
// resubmission is served entirely from the content-addressed cache
// (every run a hit, zero new simulations). It walks the fidelity
// surface (model and sampled backends, triage sweeps), checking that a
// sampled resubmission hits the cache while the same cell on the cycle
// backend is a distinct address that simulates afresh. It then
// exercises the v2 cancellation path: an in-flight campaign is cancelled via
// DELETE /v1/jobs/{id} and must settle in state canceled with its
// queued cells never simulated, after which an identical resubmission
// must re-simulate (no stale canceled entry served from the cache).
// Finally it proves the persistent result store survives a crash: a
// store-backed server runs a campaign, is SIGKILLed, and a fresh
// server on the same store file must serve the identical campaign
// entirely from disk — every run a store hit, zero new simulations.
// Only the Go toolchain is required — no curl, no jq.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// matrixBody is the -quick-scale campaign the smoke submits twice.
const matrixBody = `{"scenarios":["branchy","hashjoin"],"seeds":2,"scale":0.05,"detail_insts":5000,
 "configs":[{"name":"IQ64"},{"name":"IQ32+LTP","use_ltp":true,"config":{"iq_size":32}}]}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		dumpDaemonStderr()
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

// stderrTailLines is how much of each daemon's stderr the harness
// retains for the failure dump.
const stderrTailLines = 100

// stderrTail captures the last stderrTailLines lines a daemon wrote
// to stderr, so a failure can show what the server was doing instead
// of a bare HTTP status.
type stderrTail struct {
	name string

	mu      sync.Mutex
	partial []byte
	lines   []string
}

// Write appends daemon output, keeping only the newest lines.
func (t *stderrTail) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partial = append(t.partial, p...)
	for {
		i := bytes.IndexByte(t.partial, '\n')
		if i < 0 {
			break
		}
		t.lines = append(t.lines, string(t.partial[:i]))
		t.partial = t.partial[i+1:]
		if len(t.lines) > stderrTailLines {
			t.lines = t.lines[len(t.lines)-stderrTailLines:]
		}
	}
	return len(p), nil
}

// dump prints the captured tail.
func (t *stderrTail) dump(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lines := t.lines
	if len(t.partial) > 0 {
		lines = append(lines, string(t.partial))
	}
	if len(lines) == 0 {
		fmt.Fprintf(w, "--- %s: no stderr output ---\n", t.name)
		return
	}
	fmt.Fprintf(w, "--- %s: last %d stderr lines ---\n", t.name, len(lines))
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// daemonTails registers every booted server's stderr tail for the
// failure dump.
var daemonTails struct {
	mu    sync.Mutex
	tails []*stderrTail
}

// newDaemonTail creates and registers a tail for one server.
func newDaemonTail(name string) *stderrTail {
	t := &stderrTail{name: name}
	daemonTails.mu.Lock()
	daemonTails.tails = append(daemonTails.tails, t)
	daemonTails.mu.Unlock()
	return t
}

// dumpDaemonStderr prints every daemon's captured stderr tail (newest
// server last) — the first thing to read when the smoke fails.
func dumpDaemonStderr() {
	daemonTails.mu.Lock()
	tails := daemonTails.tails
	daemonTails.mu.Unlock()
	for _, t := range tails {
		t.dump(os.Stderr)
	}
}

// progressView mirrors the documented job.progress fields.
type progressView struct {
	TotalRuns    int   `json:"total_runs"`
	DoneRuns     int   `json:"done_runs"`
	CanceledRuns int   `json:"canceled_runs"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheShared  int64 `json:"cache_shared"`
	StoreHits    int64 `json:"store_hits"`
}

// matrixResp mirrors the documented campaign response shape.
type matrixResp struct {
	Job struct {
		ID       string       `json:"id"`
		Hash     string       `json:"hash"`
		Status   string       `json:"status"`
		Error    string       `json:"error"`
		Progress progressView `json:"progress"`
	} `json:"job"`
	Result json.RawMessage `json:"result"`
}

func run() error {
	tmp, err := os.MkdirTemp("", "ltpserved-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "ltpserved")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ltpserved")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ltpserved: %w", err)
	}

	// Two workers keep the cancel phase deterministic: the slow
	// campaign's first cells are still in flight when the DELETE lands.
	srv, base, err := bootServer(bin)
	if err != nil {
		return err
	}
	defer stopServer(srv)
	fmt.Println("servesmoke: server at", base)

	if err := get(base+"/healthz", nil); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	var first matrixResp
	if err := post(base+"/v1/matrix?wait=1", matrixBody, &first); err != nil {
		return fmt.Errorf("first matrix: %w", err)
	}
	if first.Job.Status != "done" {
		return fmt.Errorf("first campaign status %q (%s)", first.Job.Status, first.Job.Error)
	}
	if first.Job.Progress.CacheMisses == 0 {
		return fmt.Errorf("first campaign reports zero simulations: %+v", first.Job.Progress)
	}
	fmt.Printf("servesmoke: first submission: %d runs, %d simulated, %d cache hits\n",
		first.Job.Progress.TotalRuns, first.Job.Progress.CacheMisses, first.Job.Progress.CacheHits)

	var second matrixResp
	if err := post(base+"/v1/matrix?wait=1", matrixBody, &second); err != nil {
		return fmt.Errorf("second matrix: %w", err)
	}
	if second.Job.Status != "done" {
		return fmt.Errorf("second campaign status %q (%s)", second.Job.Status, second.Job.Error)
	}
	p := second.Job.Progress
	if p.CacheHits != int64(p.TotalRuns) || p.CacheMisses != 0 {
		return fmt.Errorf("resubmission was not served from cache: %+v", p)
	}
	if second.Job.Hash != first.Job.Hash {
		return fmt.Errorf("identical campaigns hash differently: %s vs %s", first.Job.Hash, second.Job.Hash)
	}
	fmt.Printf("servesmoke: resubmission: %d/%d runs served from cache, 0 simulated\n",
		p.CacheHits, p.TotalRuns)

	// The stats endpoint must agree that reuse happened.
	var stats struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := get(base+"/v1/stats", &stats); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Cache.Hits == 0 {
		return fmt.Errorf("stats show no cache hits: %+v", stats)
	}

	if err := backendFlow(base); err != nil {
		return err
	}
	if err := microarchFlow(base); err != nil {
		return err
	}
	if err := sampledFlow(base); err != nil {
		return err
	}
	if err := instantFlow(base); err != nil {
		return err
	}
	if err := cancelFlow(base); err != nil {
		return err
	}
	return storeRestartFlow(bin, filepath.Join(tmp, "results.store"))
}

// instantFlow exercises the batched model evaluation end to end: a
// 64-cell model sweep — one functional stream fanned into IQ × ROB ×
// parking timing lanes — must round-trip inside a wall-clock budget
// (the batch path amortizes warm-up and emulation across the group),
// and its cells must land in the result cache under exactly the
// content addresses single /v1/run submissions compute: a sampling of
// cells resubmitted singly must all be pure cache hits.
func instantFlow(base string) error {
	iqs := []int{16, 24, 32, 40, 48, 56, 64, 80}
	robs := []int{128, 160, 192, 224}

	var iqPts, robPts []string
	for _, iq := range iqs {
		iqPts = append(iqPts, fmt.Sprintf(`{"name":"iq%d","patch":{"iq_size":%d}}`, iq, iq))
	}
	for _, rob := range robs {
		robPts = append(robPts, fmt.Sprintf(`{"name":"rob%d","patch":{"rob_size":%d}}`, rob, rob))
	}
	sweepBody := fmt.Sprintf(`{
	 "base": {"scenario":"hashjoin","backend":"model","scale":0.05,"warm_insts":8000,"max_insts":20000},
	 "axes": [
	  {"name":"iq","points":[%s]},
	  {"name":"rob","points":[%s]},
	  {"name":"park","points":[{"name":"off","patch":{}},{"name":"on","patch":{"use_ltp":true}}]}
	 ]
	}`, strings.Join(iqPts, ","), strings.Join(robPts, ","))

	var sweep struct {
		Job struct {
			Status   string       `json:"status"`
			Error    string       `json:"error"`
			Progress progressView `json:"progress"`
		} `json:"job"`
		Result struct {
			Cells []struct {
				Backend string `json:"backend"`
			} `json:"cells"`
		} `json:"result"`
	}
	start := time.Now()
	if err := post(base+"/v1/sweep?wait=1", sweepBody, &sweep); err != nil {
		return fmt.Errorf("instant sweep: %w", err)
	}
	elapsed := time.Since(start)
	if sweep.Job.Status != "done" {
		return fmt.Errorf("instant sweep status %q (%s)", sweep.Job.Status, sweep.Job.Error)
	}
	if sweep.Job.Progress.TotalRuns != 64 || sweep.Job.Progress.DoneRuns != 64 {
		return fmt.Errorf("instant sweep progress %+v, want 64/64", sweep.Job.Progress)
	}
	if len(sweep.Result.Cells) != 64 {
		return fmt.Errorf("instant sweep has %d cells, want 64", len(sweep.Result.Cells))
	}
	// Budget: the batch path turns 64 model cells into one warm pass
	// plus 64 cheap timing lanes — normally well under a second. The
	// bound is generous for loaded CI machines while still catching a
	// regression to 64 independent warm-ups.
	const budget = 15 * time.Second
	if elapsed > budget {
		return fmt.Errorf("64-cell model sweep took %v, over the %v interactive budget", elapsed, budget)
	}

	// Corner and center cells resubmitted singly: the batch must have
	// cached them under the same addresses /v1/run computes.
	picks := []struct {
		iq, rob int
		park    bool
	}{
		{16, 128, false},
		{40, 160, false},
		{80, 224, true},
	}
	hashes := map[string]bool{}
	for _, p := range picks {
		park := ""
		if p.park {
			park = `,"use_ltp":true`
		}
		body := fmt.Sprintf(
			`{"scenario":"hashjoin","backend":"model","scale":0.05,"warm_insts":8000,"max_insts":20000,"config":{"iq_size":%d,"rob_size":%d}%s}`,
			p.iq, p.rob, park)
		var single struct {
			Hash  string `json:"hash"`
			Cache string `json:"cache"`
		}
		if err := post(base+"/v1/run", body, &single); err != nil {
			return fmt.Errorf("instant cell iq%d/rob%d: %w", p.iq, p.rob, err)
		}
		if single.Cache != "hit" {
			return fmt.Errorf("cell iq%d/rob%d park=%v resubmitted as %q, want hit: the batch and single paths disagree on content addresses",
				p.iq, p.rob, p.park, single.Cache)
		}
		if hashes[single.Hash] {
			return fmt.Errorf("distinct cells share hash %s", single.Hash)
		}
		hashes[single.Hash] = true
	}
	fmt.Printf("servesmoke: instant sweep ok (64 model cells in %v, single resubmissions all hits)\n",
		elapsed.Round(time.Millisecond))
	return nil
}

// bootServer starts ltpserved on a free port (with any extra flags)
// and waits for the machine-readable "listening on <addr>" line.
func bootServer(bin string, extra ...string) (*exec.Cmd, string, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-q", "-parallel", "2"}, extra...)
	srv := exec.Command(bin, args...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	// Capture stderr instead of streaming it: on failure the harness
	// dumps each daemon's tail next to the error, where it is readable,
	// rather than interleaved with the whole run's output.
	srv.Stderr = newDaemonTail("ltpserved " + strings.Join(args, " "))
	if err := srv.Start(); err != nil {
		return nil, "", fmt.Errorf("starting ltpserved: %w", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return srv, "http://" + addr, nil
	case <-time.After(30 * time.Second):
		stopServer(srv)
		return nil, "", fmt.Errorf("server never reported its address")
	}
}

// stopServer kills the server process outright (the restart flow wants
// a crash, not a graceful drain) and reaps it.
func stopServer(srv *exec.Cmd) {
	srv.Process.Kill()
	srv.Wait()
}

// storeStatsView mirrors the documented /v1/stats store section.
type storeStatsView struct {
	Cache struct {
		Misses uint64 `json:"misses"`
	} `json:"cache"`
	Store *struct {
		Records int64  `json:"records"`
		Hits    uint64 `json:"hits"`
		Appends uint64 `json:"appends"`
	} `json:"store"`
}

// storeRestartFlow proves results survive a hard crash: a store-backed
// server runs the quick matrix, is SIGKILLed mid-life, and a fresh
// server on the same store file must serve the identical campaign
// entirely from disk — every run a store hit, zero new simulations.
func storeRestartFlow(bin, storePath string) error {
	srv1, base, err := bootServer(bin, "-store", storePath)
	if err != nil {
		return err
	}
	defer stopServer(srv1)

	var first matrixResp
	if err := post(base+"/v1/matrix?wait=1", matrixBody, &first); err != nil {
		return fmt.Errorf("store-backed matrix: %w", err)
	}
	if first.Job.Status != "done" || first.Job.Progress.CacheMisses == 0 {
		return fmt.Errorf("store-backed campaign did not simulate: %+v", first.Job)
	}
	total := first.Job.Progress.TotalRuns
	var st storeStatsView
	if err := get(base+"/v1/stats", &st); err != nil {
		return fmt.Errorf("store stats: %w", err)
	}
	if st.Store == nil || st.Store.Appends == 0 {
		return fmt.Errorf("stats show no store appends after a store-backed campaign: %+v", st.Store)
	}
	// Crash: no drain, no graceful close. The appended records must
	// already be durable.
	stopServer(srv1)

	srv2, base2, err := bootServer(bin, "-store", storePath)
	if err != nil {
		return err
	}
	defer stopServer(srv2)
	var redo matrixResp
	if err := post(base2+"/v1/matrix?wait=1", matrixBody, &redo); err != nil {
		return fmt.Errorf("post-restart matrix: %w", err)
	}
	p := redo.Job.Progress
	if redo.Job.Status != "done" || p.StoreHits != int64(total) || p.CacheMisses != 0 || p.CacheHits != 0 {
		return fmt.Errorf("post-restart campaign was not served from the store: %+v", p)
	}
	if redo.Job.Hash != first.Job.Hash {
		return fmt.Errorf("campaign hash changed across restart: %s vs %s", first.Job.Hash, redo.Job.Hash)
	}
	var st2 storeStatsView
	if err := get(base2+"/v1/stats", &st2); err != nil {
		return fmt.Errorf("post-restart stats: %w", err)
	}
	if st2.Cache.Misses != 0 || st2.Store == nil || st2.Store.Hits != uint64(total) || st2.Store.Appends != 0 {
		return fmt.Errorf("post-restart stats show fresh simulations: cache %+v store %+v", st2.Cache, st2.Store)
	}
	fmt.Printf("servesmoke: store restart: %d/%d runs from disk after SIGKILL, 0 simulated\n",
		p.StoreHits, total)
	return nil
}

// sampledFlow exercises the sampled fidelity tier over HTTP: a sampled
// run simulates and carries its sampling annotation, an identical
// resubmission is a pure cache hit, and the same cell on the cycle
// backend is a distinct content address that must simulate afresh.
func sampledFlow(base string) error {
	const cell = `{"scenario":"hashjoin","scale":0.05,"warm_insts":5000,"max_insts":40000%s}`
	type runResp struct {
		Hash   string `json:"hash"`
		Cache  string `json:"cache"`
		Result struct {
			CPI      float64 `json:"CPI"`
			Sampling *struct {
				Intervals    int    `json:"Intervals"`
				SampledInsts uint64 `json:"SampledInsts"`
			} `json:"Sampling"`
		} `json:"result"`
	}

	var first, again, cyc runResp
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"backend":"sampled","intervals":4`), &first); err != nil {
		return fmt.Errorf("sampled run: %w", err)
	}
	if first.Cache != "miss" {
		return fmt.Errorf("first sampled run was %q, want miss", first.Cache)
	}
	if first.Result.Sampling == nil || first.Result.Sampling.Intervals != 4 {
		return fmt.Errorf("sampled run missing its sampling annotation: %+v", first.Result)
	}
	if n := first.Result.Sampling.SampledInsts; n == 0 || n >= 40000 {
		return fmt.Errorf("sampled run measured %d insts, want a strict fraction of 40000", n)
	}

	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"backend":"sampled","intervals":4`), &again); err != nil {
		return fmt.Errorf("sampled resubmit: %w", err)
	}
	if again.Cache != "hit" || again.Hash != first.Hash {
		return fmt.Errorf("sampled resubmit not served from cache: cache %q, hash %s vs %s",
			again.Cache, again.Hash, first.Hash)
	}

	// The same cell cycle-accurately is a different content address and
	// must simulate (the sampled result cannot masquerade as cycle).
	if err := post(base+"/v1/run", fmt.Sprintf(cell, ""), &cyc); err != nil {
		return fmt.Errorf("cycle resubmit: %w", err)
	}
	if cyc.Hash == first.Hash {
		return fmt.Errorf("sampled and cycle cells share hash %s", cyc.Hash)
	}
	if cyc.Cache != "miss" {
		return fmt.Errorf("cycle resubmit was %q, want miss", cyc.Cache)
	}
	fmt.Printf("servesmoke: sampled flow ok (sampled CPI %.3f over %d/40000 insts, cycle CPI %.3f)\n",
		first.Result.CPI, first.Result.Sampling.SampledInsts, cyc.Result.CPI)
	return nil
}

// backendFlow exercises the fidelity surface: the backend registry on
// /v1/workloads, a model-backend /v1/run whose hash must differ from
// the cycle run's, and a triage sweep whose two phases both finish.
func backendFlow(base string) error {
	var w struct {
		Backends []struct {
			Name     string `json:"name"`
			Fidelity string `json:"fidelity"`
		} `json:"backends"`
	}
	if err := get(base+"/v1/workloads", &w); err != nil {
		return fmt.Errorf("workloads: %w", err)
	}
	names := map[string]bool{}
	for _, b := range w.Backends {
		names[b.Name] = true
	}
	if !names["cycle"] || !names["model"] {
		return fmt.Errorf("backend registry incomplete: %+v", w.Backends)
	}

	const runBody = `{"scenario":"branchy","scale":0.05,"max_insts":5000%s}`
	var cyc, mod struct {
		Hash   string `json:"hash"`
		Result struct {
			CPI float64 `json:"CPI"`
		} `json:"result"`
	}
	if err := post(base+"/v1/run", fmt.Sprintf(runBody, ""), &cyc); err != nil {
		return fmt.Errorf("cycle run: %w", err)
	}
	if err := post(base+"/v1/run", fmt.Sprintf(runBody, `,"backend":"model"`), &mod); err != nil {
		return fmt.Errorf("model run: %w", err)
	}
	if mod.Hash == cyc.Hash {
		return fmt.Errorf("model and cycle runs share hash %s", mod.Hash)
	}
	if mod.Result.CPI <= 0 {
		return fmt.Errorf("model run returned no CPI estimate")
	}
	fmt.Printf("servesmoke: backends ok (cycle CPI %.3f, model estimate %.3f)\n", cyc.Result.CPI, mod.Result.CPI)

	// A triage sweep: 2 scenarios × 2 configs × 2 seeds on the model
	// backend, best cell re-run cycle-accurately. 8 + 2 runs total.
	const triageBody = `{
	 "base": {"scale":0.05,"max_insts":4000},
	 "axes": [
	  {"name":"scenario","points":[{"name":"branchy","patch":{"scenario":"branchy"}},
	                               {"name":"hashjoin","patch":{"scenario":"hashjoin"}}]},
	  {"name":"config","points":[{"name":"IQ64","patch":{}},
	                             {"name":"IQ32","patch":{"iq_size":32}}]},
	  {"name":"seed","replicate":true,"points":[{"name":"s1","patch":{"seed":1}},
	                                            {"name":"s2","patch":{"seed":2}}]}
	 ],
	 "triage": {"top_k": 1}
	}`
	var sweep struct {
		Job struct {
			Status   string `json:"status"`
			Error    string `json:"error"`
			Progress struct {
				TotalRuns int `json:"total_runs"`
				DoneRuns  int `json:"done_runs"`
			} `json:"progress"`
		} `json:"job"`
		Result struct {
			Cells []struct {
				Backend string `json:"backend"`
			} `json:"cells"`
			Triage struct {
				Detailed []struct {
					Backend string   `json:"backend"`
					Coords  []string `json:"coords"`
				} `json:"detailed"`
			} `json:"triage"`
		} `json:"result"`
	}
	if err := post(base+"/v1/sweep?wait=1", triageBody, &sweep); err != nil {
		return fmt.Errorf("triage sweep: %w", err)
	}
	if sweep.Job.Status != "done" {
		return fmt.Errorf("triage sweep status %q (%s)", sweep.Job.Status, sweep.Job.Error)
	}
	if sweep.Job.Progress.TotalRuns != 10 || sweep.Job.Progress.DoneRuns != 10 {
		return fmt.Errorf("triage progress %+v, want 10/10", sweep.Job.Progress)
	}
	if len(sweep.Result.Cells) != 4 {
		return fmt.Errorf("triage result has %d estimate cells, want 4", len(sweep.Result.Cells))
	}
	for _, c := range sweep.Result.Cells {
		if c.Backend != "model" {
			return fmt.Errorf("estimate cell on backend %q", c.Backend)
		}
	}
	if n := len(sweep.Result.Triage.Detailed); n != 1 {
		return fmt.Errorf("triage selected %d detailed cells, want 1", n)
	}
	if b := sweep.Result.Triage.Detailed[0].Backend; b != "cycle" {
		return fmt.Errorf("detailed cell on backend %q, want cycle", b)
	}
	fmt.Printf("servesmoke: triage sweep ok (detailed cell %v)\n", sweep.Result.Triage.Detailed[0].Coords)
	return nil
}

// microarchFlow exercises the microarchitectural sweep axes over
// HTTP: the predictor/prefetcher registries on /v1/workloads, distinct
// content addresses per axis value (with the default spellings
// collapsing onto the unset form, so "gshare" resubmits as a cache
// hit), a contended co-runner run, and a predictor × prefetcher sweep.
func microarchFlow(base string) error {
	var w struct {
		BranchPredictors []string `json:"branch_predictors"`
		Prefetchers      []string `json:"prefetchers"`
	}
	if err := get(base+"/v1/workloads", &w); err != nil {
		return fmt.Errorf("workloads: %w", err)
	}
	have := func(list []string, name string) bool {
		for _, n := range list {
			if n == name {
				return true
			}
		}
		return false
	}
	if !have(w.BranchPredictors, "gshare") || !have(w.BranchPredictors, "tage") {
		return fmt.Errorf("branch predictor registry incomplete: %v", w.BranchPredictors)
	}
	if !have(w.Prefetchers, "none") || !have(w.Prefetchers, "stride") || !have(w.Prefetchers, "stream") {
		return fmt.Errorf("prefetcher registry incomplete: %v", w.Prefetchers)
	}

	const cell = `{"scenario":"branchy","scale":0.05,"max_insts":5000%s}`
	type runResp struct {
		Hash  string `json:"hash"`
		Cache string `json:"cache"`
	}
	var def, tage, gsh, strm, cor, corAgain runResp
	if err := post(base+"/v1/run", fmt.Sprintf(cell, ""), &def); err != nil {
		return fmt.Errorf("default run: %w", err)
	}
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"branch_pred":"tage"`), &tage); err != nil {
		return fmt.Errorf("tage run: %w", err)
	}
	if tage.Cache != "miss" || tage.Hash == def.Hash {
		return fmt.Errorf("tage cell not a distinct address: cache %q, hash %s vs %s",
			tage.Cache, tage.Hash, def.Hash)
	}
	// gshare is the Table 1 default: naming it must land on the unset
	// form's address — a cache hit, not a fresh simulation.
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"branch_pred":"gshare"`), &gsh); err != nil {
		return fmt.Errorf("gshare run: %w", err)
	}
	if gsh.Cache != "hit" || gsh.Hash != def.Hash {
		return fmt.Errorf("explicit gshare did not collapse onto the default: cache %q, hash %s vs %s",
			gsh.Cache, gsh.Hash, def.Hash)
	}
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"prefetcher":"stream"`), &strm); err != nil {
		return fmt.Errorf("stream run: %w", err)
	}
	if strm.Cache != "miss" || strm.Hash == def.Hash || strm.Hash == tage.Hash {
		return fmt.Errorf("stream cell not a distinct address: %+v", strm)
	}
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"corunners":[{"scenario":"memhog"}]`), &cor); err != nil {
		return fmt.Errorf("co-runner run: %w", err)
	}
	if cor.Cache != "miss" || cor.Hash == def.Hash {
		return fmt.Errorf("co-runner cell not a distinct address: %+v", cor)
	}
	if err := post(base+"/v1/run", fmt.Sprintf(cell, `,"corunners":[{"scenario":"memhog"}]`), &corAgain); err != nil {
		return fmt.Errorf("co-runner resubmit: %w", err)
	}
	if corAgain.Cache != "hit" || corAgain.Hash != cor.Hash {
		return fmt.Errorf("co-runner resubmit not served from cache: %+v", corAgain)
	}

	// A predictor × prefetcher sweep: every cell simulates and lands on
	// its own content address.
	const sweepBody = `{
	 "base": {"scenario":"branchy","scale":0.05,"max_insts":4000},
	 "axes": [
	  {"name":"bpred","points":[{"name":"gshare","patch":{"branch_pred":"gshare"}},
	                            {"name":"tage","patch":{"branch_pred":"tage"}}]},
	  {"name":"pref","points":[{"name":"none","patch":{"prefetcher":"none"}},
	                           {"name":"stream","patch":{"prefetcher":"stream"}}]}
	 ]
	}`
	var sweep struct {
		Job struct {
			Status   string       `json:"status"`
			Error    string       `json:"error"`
			Progress progressView `json:"progress"`
		} `json:"job"`
		Result struct {
			Cells []struct {
				Coords []string `json:"coords"`
			} `json:"cells"`
		} `json:"result"`
	}
	if err := post(base+"/v1/sweep?wait=1", sweepBody, &sweep); err != nil {
		return fmt.Errorf("microarch sweep: %w", err)
	}
	if sweep.Job.Status != "done" {
		return fmt.Errorf("microarch sweep status %q (%s)", sweep.Job.Status, sweep.Job.Error)
	}
	if sweep.Job.Progress.TotalRuns != 4 || sweep.Job.Progress.DoneRuns != 4 {
		return fmt.Errorf("microarch sweep progress %+v, want 4/4", sweep.Job.Progress)
	}
	if len(sweep.Result.Cells) != 4 {
		return fmt.Errorf("microarch sweep has %d cells, want 4", len(sweep.Result.Cells))
	}
	fmt.Printf("servesmoke: microarch axes ok (%d predictors, %d prefetchers, co-runner cell cached)\n",
		len(w.BranchPredictors), len(w.Prefetchers))
	return nil
}

// cancelBody is the slow campaign the cancel phase aborts: 8 runs of
// 150k pointer-chase instructions behind 2 workers — many seconds of
// work, cancelled within milliseconds of submission.
const cancelBody = `{"scenarios":["ptrchase"],"seeds":8,"scale":0.1,"detail_insts":150000,
 "configs":[{"name":"IQ64"}]}`

// cancelFlow drives DELETE /v1/jobs/{id} end to end.
func cancelFlow(base string) error {
	var slow matrixResp
	if err := post(base+"/v1/matrix", cancelBody, &slow); err != nil {
		return fmt.Errorf("slow matrix submit: %w", err)
	}
	if slow.Job.ID == "" {
		return fmt.Errorf("slow campaign has no job id")
	}

	var deleted matrixResp
	if err := del(base+"/v1/jobs/"+slow.Job.ID, &deleted); err != nil {
		return fmt.Errorf("DELETE job: %w", err)
	}

	// The job must settle in state canceled promptly.
	var view matrixResp
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := get(base+"/v1/jobs/"+slow.Job.ID, &view); err != nil {
			return fmt.Errorf("polling cancelled job: %w", err)
		}
		if view.Job.Status == "canceled" {
			break
		}
		if view.Job.Status == "done" {
			return fmt.Errorf("campaign finished before the cancel landed; cancelBody is not slow enough")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job stuck in %q after DELETE", view.Job.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	p := view.Job.Progress
	if p.CanceledRuns == 0 || p.DoneRuns+p.CanceledRuns != p.TotalRuns {
		return fmt.Errorf("canceled progress inconsistent: %+v", p)
	}
	fmt.Printf("servesmoke: cancel: %d/%d runs abandoned (%d finished first)\n",
		p.CanceledRuns, p.TotalRuns, p.DoneRuns)

	// Queued cells never run: the simulation counter must stay flat
	// after the cancel settles.
	var st1, st2 struct {
		Cache struct {
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := get(base+"/v1/stats", &st1); err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond)
	if err := get(base+"/v1/stats", &st2); err != nil {
		return err
	}
	if st2.Cache.Misses != st1.Cache.Misses {
		return fmt.Errorf("simulations kept starting after cancel: misses %d -> %d",
			st1.Cache.Misses, st2.Cache.Misses)
	}

	// No stale canceled entries: an identical resubmission must
	// actually simulate the abandoned cells (the pre-cancel finishers
	// may legitimately hit).
	var redo matrixResp
	if err := post(base+"/v1/matrix?wait=1", cancelBody, &redo); err != nil {
		return fmt.Errorf("resubmit after cancel: %w", err)
	}
	if redo.Job.Status != "done" {
		return fmt.Errorf("resubmission status %q (%s)", redo.Job.Status, redo.Job.Error)
	}
	if redo.Job.Progress.CacheMisses == 0 {
		return fmt.Errorf("resubmission after cancel simulated nothing: %+v", redo.Job.Progress)
	}
	fmt.Printf("servesmoke: resubmit after cancel: %d simulated, %d hits\n",
		redo.Job.Progress.CacheMisses, redo.Job.Progress.CacheHits)
	return nil
}

// decodeChecked reads a response, failing with the offending body —
// trimmed to a sane length — whenever the status is unexpected or the
// payload does not decode, so a failure shows what the server actually
// said.
func decodeChecked(resp *http.Response, out any, okStatus ...int) error {
	defer resp.Body.Close()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ok := false
	for _, s := range okStatus {
		if resp.StatusCode == s {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("status %d; body: %s", resp.StatusCode, trimBody(body))
	}
	if readErr != nil {
		return fmt.Errorf("reading response body: %w", readErr)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("decoding response: %v; body: %s", err, trimBody(body))
	}
	return nil
}

// trimBody renders a response body for an error message.
func trimBody(body []byte) string {
	s := strings.TrimSpace(string(body))
	if s == "" {
		return "<empty>"
	}
	if len(s) > 2048 {
		s = s[:2048] + " ...[truncated]"
	}
	return s
}

// get fetches JSON into out (nil = just check the status).
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeChecked(resp, out, 200)
}

// post sends a JSON body and decodes the JSON response into out.
func post(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return decodeChecked(resp, out, 200, 202)
}

// del issues a DELETE and decodes the JSON response into out.
func del(url string, out any) error {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return decodeChecked(resp, out, 200)
}
