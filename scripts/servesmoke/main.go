// Command servesmoke is the end-to-end smoke test behind
// `make smoke-serve`: it builds cmd/ltpserved, boots it on a free
// port, submits a quick matrix campaign twice, and fails unless the
// resubmission is served entirely from the content-addressed cache
// (every run a hit, zero new simulations). Only the Go toolchain is
// required — no curl, no jq.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// matrixBody is the -quick-scale campaign the smoke submits twice.
const matrixBody = `{"scenarios":["branchy","hashjoin"],"seeds":2,"scale":0.05,"detail_insts":5000,
 "configs":[{"name":"IQ64"},{"name":"IQ32+LTP","use_ltp":true,"config":{"iq_size":32}}]}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "ltpserved-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "ltpserved")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ltpserved")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ltpserved: %w", err)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-q")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting ltpserved: %w", err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// The server prints "listening on <addr>" once bound.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				return
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server never reported its address")
	}
	fmt.Println("servesmoke: server at", base)

	if err := get(base+"/healthz", nil); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// progressView mirrors the documented job.progress fields.
	type progressView struct {
		TotalRuns   int   `json:"total_runs"`
		DoneRuns    int   `json:"done_runs"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		CacheShared int64 `json:"cache_shared"`
	}
	type matrixResp struct {
		Job struct {
			ID       string       `json:"id"`
			Hash     string       `json:"hash"`
			Status   string       `json:"status"`
			Error    string       `json:"error"`
			Progress progressView `json:"progress"`
		} `json:"job"`
		Result json.RawMessage `json:"result"`
	}

	var first matrixResp
	if err := post(base+"/v1/matrix?wait=1", matrixBody, &first); err != nil {
		return fmt.Errorf("first matrix: %w", err)
	}
	if first.Job.Status != "done" {
		return fmt.Errorf("first campaign status %q (%s)", first.Job.Status, first.Job.Error)
	}
	if first.Job.Progress.CacheMisses == 0 {
		return fmt.Errorf("first campaign reports zero simulations: %+v", first.Job.Progress)
	}
	fmt.Printf("servesmoke: first submission: %d runs, %d simulated, %d cache hits\n",
		first.Job.Progress.TotalRuns, first.Job.Progress.CacheMisses, first.Job.Progress.CacheHits)

	var second matrixResp
	if err := post(base+"/v1/matrix?wait=1", matrixBody, &second); err != nil {
		return fmt.Errorf("second matrix: %w", err)
	}
	if second.Job.Status != "done" {
		return fmt.Errorf("second campaign status %q (%s)", second.Job.Status, second.Job.Error)
	}
	p := second.Job.Progress
	if p.CacheHits != int64(p.TotalRuns) || p.CacheMisses != 0 {
		return fmt.Errorf("resubmission was not served from cache: %+v", p)
	}
	if second.Job.Hash != first.Job.Hash {
		return fmt.Errorf("identical campaigns hash differently: %s vs %s", first.Job.Hash, second.Job.Hash)
	}
	fmt.Printf("servesmoke: resubmission: %d/%d runs served from cache, 0 simulated\n",
		p.CacheHits, p.TotalRuns)

	// The stats endpoint must agree that reuse happened.
	var stats struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := get(base+"/v1/stats", &stats); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Cache.Hits == 0 {
		return fmt.Errorf("stats show no cache hits: %+v", stats)
	}
	return nil
}

// get fetches JSON into out (nil = just check the status).
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// post sends a JSON body and decodes the JSON response into out.
func post(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
