#!/bin/sh
# record_bench.sh — run the benchmark campaign once and write BENCH_<n>.json
# (the first free index), so every PR leaves a performance trajectory point.
#
# Usage: scripts/record_bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

out="${1:-}"
if [ -z "$out" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

start=$(date +%s)
go test -run='^$' -bench=. -benchtime=1x . >"$tmp" 2>&1 || { cat "$tmp"; exit 1; }
end=$(date +%s)
wall=$((end - start))

awk -v wall="$wall" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"campaign_wall_clock_s\": %d,\n  \"benchmarks\": [", date, wall; first = 1 }
/^Benchmark/ {
    name = $1; ns = $3
    extra = ""
    # insts/op metric => derive insts per second
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "insts/op") {
            ips = ($i * 1e9) / ns
            extra = sprintf(", \"insts_per_sec\": %.0f", ips)
        }
    }
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s%s}", name, ns, extra
}
END { printf "\n  ]\n}\n" }
' "$tmp" >"$out"

echo "wrote $out (campaign wall-clock ${wall}s)"
grep -E '^Benchmark(Pipeline|Emulator)' "$tmp" || true
