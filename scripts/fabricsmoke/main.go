// Command fabricsmoke is the end-to-end fabric smoke test behind
// `make smoke-fabric`: it builds cmd/ltpserved, boots three worker
// processes and one coordinator fronting them, submits a sweep
// campaign on the NDJSON stream, SIGKILLs one worker while its cells
// are mid-flight, and fails unless the campaign still completes with
// every enumerated cell delivered exactly once — the process-level
// proof of the retry-and-re-dispatch story the in-process chaos tests
// (internal/fabric) pin deterministically. It then asserts the
// coordinator's health view noticed the corpse and that the same
// campaign submitted directly to a surviving worker agrees on the
// content address. Only the Go toolchain is required.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// sweepBody is the campaign: 16 cells × 2 seed replicates = 32 runs,
// sized so the fleet is still mid-campaign when the kill lands.
const sweepBody = `{
 "base": {"scenario":"branchy","scale":0.05,"max_insts":10000},
 "axes": [
  {"name":"iq","points":[{"name":"iq16","patch":{"iq_size":16}},{"name":"iq32","patch":{"iq_size":32}},
                         {"name":"iq48","patch":{"iq_size":48}},{"name":"iq64","patch":{"iq_size":64}}]},
  {"name":"rob","points":[{"name":"rob96","patch":{"rob_size":96}},{"name":"rob128","patch":{"rob_size":128}},
                          {"name":"rob160","patch":{"rob_size":160}},{"name":"rob192","patch":{"rob_size":192}}]},
  {"name":"seed","replicate":true,"points":[{"name":"s1","patch":{"seed":1}},{"name":"s2","patch":{"seed":2}}]}
 ]
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fabricsmoke: FAIL:", err)
		dumpDaemonStderr()
		os.Exit(1)
	}
	fmt.Println("fabricsmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "ltpfabric-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "ltpserved")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ltpserved")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ltpserved: %w", err)
	}

	// Three workers...
	var workers []*daemon
	var urls []string
	for i := 0; i < 3; i++ {
		w, err := boot(bin, fmt.Sprintf("worker%d", i), "-addr", "127.0.0.1:0", "-q", "-parallel", "2")
		if err != nil {
			return err
		}
		defer w.kill()
		workers = append(workers, w)
		urls = append(urls, w.base)
	}
	// ...and the coordinator fronting them, tuned to notice faults fast.
	coord, err := boot(bin, "coordinator",
		"-coordinator", "-workers", strings.Join(urls, ","),
		"-addr", "127.0.0.1:0", "-window", "2", "-retries", "5", "-poll", "300ms")
	if err != nil {
		return err
	}
	defer coord.kill()
	fmt.Printf("fabricsmoke: coordinator at %s fronting %d workers\n", coord.base, len(workers))

	start := time.Now()
	resp, err := http.Post(coord.base+"/v1/sweep?stream=1", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return fmt.Errorf("submitting sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return fmt.Errorf("sweep submit status %d; body: %s", resp.StatusCode, bytes.TrimSpace(body))
	}

	// Read the cell stream; at the third cell — campaign demonstrably
	// mid-flight — SIGKILL worker 0 outright.
	type cellView struct {
		Index int    `json:"index"`
		Phase string `json:"phase"`
		Hash  string `json:"hash"`
		Error string `json:"error"`
	}
	type event struct {
		Type string    `json:"type"`
		Cell *cellView `json:"cell"`
		Job  *struct {
			Status   string `json:"status"`
			Hash     string `json:"hash"`
			Progress struct {
				TotalRuns    int `json:"total_runs"`
				DoneRuns     int `json:"done_runs"`
				CanceledRuns int `json:"canceled_runs"`
			} `json:"progress"`
		} `json:"job"`
		Error string `json:"error"`
	}
	seen := make(map[string]bool)
	cells, killed := 0, false
	var last event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Type != "cell" {
			last = ev
			continue
		}
		cells++
		if ev.Cell.Error != "" {
			return fmt.Errorf("cell %d failed: %s", ev.Cell.Index, ev.Cell.Error)
		}
		key := fmt.Sprintf("%d/%s", ev.Cell.Index, ev.Cell.Phase)
		if seen[key] {
			return fmt.Errorf("cell %s delivered twice", key)
		}
		seen[key] = true
		if cells == 3 && !killed {
			killed = true
			fmt.Println("fabricsmoke: SIGKILLing worker0 mid-campaign")
			workers[0].kill()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stream: %w", err)
	}
	if !killed {
		return fmt.Errorf("stream ended after %d cells without reaching the kill point", cells)
	}
	if last.Type != "result" {
		return fmt.Errorf("campaign did not survive the worker loss: final event %q (%s)", last.Type, last.Error)
	}
	p := last.Job.Progress
	if cells != p.TotalRuns || p.DoneRuns != p.TotalRuns || p.CanceledRuns != 0 {
		return fmt.Errorf("campaign incomplete after recovery: %d cells streamed, progress %+v", cells, p)
	}
	wall := time.Since(start)
	fmt.Printf("fabricsmoke: campaign of %d runs survived the kill in %.1fs (every cell exactly once)\n",
		p.TotalRuns, wall.Seconds())

	// The poll loop must have noticed the corpse.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Workers        int `json:"workers"`
			HealthyWorkers int `json:"healthy_workers"`
		}
		if err := getJSON(coord.base+"/healthz", &health); err != nil {
			return fmt.Errorf("healthz: %w", err)
		}
		if health.Workers == 3 && health.HealthyWorkers == 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coordinator never noticed the dead worker: %+v", health)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Equivalence: a surviving worker, asked directly, must agree on the
	// campaign's content address.
	var direct struct {
		Job struct {
			Hash   string `json:"hash"`
			Status string `json:"status"`
		} `json:"job"`
	}
	dresp, err := http.Post(workers[1].base+"/v1/sweep?wait=1", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return fmt.Errorf("direct sweep: %w", err)
	}
	defer dresp.Body.Close()
	if err := json.NewDecoder(dresp.Body).Decode(&direct); err != nil {
		return fmt.Errorf("decoding direct sweep: %w", err)
	}
	if direct.Job.Status != "done" || direct.Job.Hash != last.Job.Hash {
		return fmt.Errorf("direct submission disagrees: status %q, hash %s vs %s",
			direct.Job.Status, direct.Job.Hash, last.Job.Hash)
	}
	fmt.Printf("fabricsmoke: fleet and single-node agree on %s\n", last.Job.Hash)
	return nil
}

// daemon is one booted ltpserved process.
type daemon struct {
	cmd  *exec.Cmd
	base string
	once sync.Once
}

// kill SIGKILLs the process (idempotent) and reaps it.
func (d *daemon) kill() {
	d.once.Do(func() {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	})
}

// boot starts ltpserved with the given args and waits for its
// machine-readable "listening on <addr>" line.
func boot(bin, name string, args ...string) (*daemon, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = newDaemonTail(name + ": ltpserved " + strings.Join(args, " "))
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	d := &daemon{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "listening on ") {
				addrCh <- strings.TrimPrefix(line, "listening on ")
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
		return d, nil
	case <-time.After(30 * time.Second):
		d.kill()
		return nil, fmt.Errorf("%s never reported its address", name)
	}
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d; body: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

// stderrTail captures the last lines of one daemon's stderr for the
// failure dump (same shape as servesmoke's).
type stderrTail struct {
	name string

	mu      sync.Mutex
	partial []byte
	lines   []string
}

// stderrTailLines is how much of each daemon's stderr is retained.
const stderrTailLines = 100

// Write appends daemon output, keeping only the newest lines.
func (t *stderrTail) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partial = append(t.partial, p...)
	for {
		i := bytes.IndexByte(t.partial, '\n')
		if i < 0 {
			break
		}
		t.lines = append(t.lines, string(t.partial[:i]))
		t.partial = t.partial[i+1:]
		if len(t.lines) > stderrTailLines {
			t.lines = t.lines[len(t.lines)-stderrTailLines:]
		}
	}
	return len(p), nil
}

// daemonTails registers every booted daemon's stderr tail.
var daemonTails struct {
	mu    sync.Mutex
	tails []*stderrTail
}

// newDaemonTail creates and registers a tail for one daemon.
func newDaemonTail(name string) *stderrTail {
	t := &stderrTail{name: name}
	daemonTails.mu.Lock()
	daemonTails.tails = append(daemonTails.tails, t)
	daemonTails.mu.Unlock()
	return t
}

// dumpDaemonStderr prints every daemon's captured stderr tail.
func dumpDaemonStderr() {
	daemonTails.mu.Lock()
	tails := daemonTails.tails
	daemonTails.mu.Unlock()
	for _, t := range tails {
		t.mu.Lock()
		lines := t.lines
		if len(t.partial) > 0 {
			lines = append(lines, string(t.partial))
		}
		if len(lines) == 0 {
			fmt.Fprintf(os.Stderr, "--- %s: no stderr output ---\n", t.name)
		} else {
			fmt.Fprintf(os.Stderr, "--- %s: last %d stderr lines ---\n", t.name, len(lines))
			for _, l := range lines {
				fmt.Fprintln(os.Stderr, l)
			}
		}
		t.mu.Unlock()
	}
}
