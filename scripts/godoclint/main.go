// Command godoclint is the CI docs gate: it fails when an exported
// symbol in the given package directories lacks a godoc comment, or
// when a package lacks a package comment. It uses only go/ast, so CI
// needs no tools beyond the toolchain.
//
// Usage:
//
//	go run ./scripts/godoclint .  internal/cache internal/server ...
//
// Checked per package: the package comment (any file), and a doc
// comment on every top-level exported type, function, method (on an
// exported receiver), and const/var (a group doc on the enclosing
// declaration block covers its members). Test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: godoclint <package dir>...")
		os.Exit(2)
	}
	var failures []string
	for _, dir := range os.Args[1:] {
		failures = append(failures, lintDir(dir)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println(f)
		}
		fmt.Printf("godoclint: %d exported symbol(s) missing documentation\n", len(failures))
		os.Exit(1)
	}
}

// lintDir checks every non-test Go file of one package directory.
func lintDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			out = append(out, lintFile(fset, name, f)...)
		}
	}
	return out
}

// lintFile checks one file's top-level declarations.
func lintFile(fset *token.FileSet, name string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if d.Doc == nil && ts.Doc == nil {
						report(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						out = append(out, lintFields(fset, ts.Name.Name, st)...)
					}
				}
			case token.CONST, token.VAR:
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						if !n.IsExported() {
							continue
						}
						// A doc on the group or on the spec (or a
						// trailing line comment) covers the name.
						if d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							report(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// lintFields checks the exported fields of an exported struct type. A
// doc comment above the field or a trailing line comment counts; a
// run of consecutive undocumented fields is covered by the doc of the
// field group's first member only when they share one declaration
// line group (Go's usual "several fields, one comment" idiom uses one
// FieldList entry with multiple names, which is a single *ast.Field).
func lintFields(fset *token.FileSet, typeName string, st *ast.StructType) []string {
	var out []string
	for _, f := range st.Fields.List {
		var exported []string
		for _, n := range f.Names {
			if n.IsExported() {
				exported = append(exported, n.Name)
			}
		}
		if len(exported) == 0 {
			continue // embedded or unexported
		}
		if f.Doc == nil && f.Comment == nil {
			out = append(out, fmt.Sprintf("%s: exported field %s.%s has no doc comment",
				fset.Position(f.Pos()), typeName, strings.Join(exported, ",")))
		}
	}
	return out
}

// exportedReceiver reports whether a method's receiver type is
// exported (true for plain functions).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcKind labels a FuncDecl for messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
