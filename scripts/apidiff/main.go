// Command apidiff guards the public surface of package ltp: it
// snapshots every exported declaration (functions, methods, types with
// their exported fields, consts, vars) into a stable, sorted text form
// and compares it against the committed api.txt. CI runs it via
// `make audit`, so a change to the exported API fails the build until
// the snapshot is regenerated with -update — making every breaking
// change a deliberate, reviewed diff instead of an accident.
//
// Usage:
//
//	apidiff            # compare the live API against api.txt
//	apidiff -update    # rewrite api.txt from the live API
//	apidiff -dir . -file api.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "directory of the package to snapshot")
		file   = flag.String("file", "api.txt", "snapshot file to compare against / update")
		update = flag.Bool("update", false, "rewrite the snapshot instead of comparing")
	)
	flag.Parse()

	snapshot, err := snapshotAPI(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		os.Exit(1)
	}
	if *update {
		if err := os.WriteFile(*file, []byte(snapshot), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apidiff:", err)
			os.Exit(1)
		}
		fmt.Printf("apidiff: wrote %s (%d lines)\n", *file, strings.Count(snapshot, "\n"))
		return
	}

	want, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidiff: reading the committed snapshot: %v\n(run `go run ./scripts/apidiff -update` to create it)\n", err)
		os.Exit(1)
	}
	if string(want) == snapshot {
		fmt.Println("apidiff: OK — exported API matches", *file)
		return
	}
	fmt.Fprintf(os.Stderr, "apidiff: exported API of %s differs from %s\n\n", *dir, *file)
	printDiff(os.Stderr, string(want), snapshot)
	fmt.Fprintln(os.Stderr, "\nIf the change is intentional, regenerate with: go run ./scripts/apidiff -update")
	os.Exit(1)
}

// snapshotAPI renders the package's exported declarations, one block
// per symbol, sorted by (kind, name) for diff stability.
func snapshotAPI(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if !strings.HasSuffix(name, "_test") {
			pkg = p
			break
		}
	}
	if pkg == nil {
		return "", fmt.Errorf("no package found in %s", dir)
	}

	type decl struct {
		key  string
		text string
	}
	var decls []decl
	add := func(key string, node any) error {
		var buf bytes.Buffer
		cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			return err
		}
		decls = append(decls, decl{key: key, text: buf.String()})
		return nil
	}

	// File order must not matter: walk files sorted by name, then sort
	// the collected declarations by key anyway.
	var fileNames []string
	for name := range pkg.Files {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		f := pkg.Files[name]
		// Trim unexported declarations, struct fields and methods; the
		// exported remainder is the public contract.
		if !ast.FileExports(f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				recv := ""
				if d.Recv != nil && len(d.Recv.List) > 0 {
					t := d.Recv.List[0].Type
					if star, ok := t.(*ast.StarExpr); ok {
						t = star.X
					}
					if ident, ok := t.(*ast.Ident); ok {
						if !ast.IsExported(ident.Name) {
							continue // method on an unexported type
						}
						recv = ident.Name + "."
					}
				}
				d.Body = nil // signatures only
				d.Doc = nil
				if err := add("2func "+recv+d.Name.Name, d); err != nil {
					return "", err
				}
			case *ast.GenDecl:
				if len(d.Specs) == 0 {
					continue
				}
				d.Doc = nil
				for _, s := range d.Specs {
					switch s := s.(type) {
					case *ast.TypeSpec:
						s.Doc, s.Comment = nil, nil
					case *ast.ValueSpec:
						s.Doc, s.Comment = nil, nil
					}
				}
				key := ""
				switch d.Tok {
				case token.TYPE:
					key = "1type " + d.Specs[0].(*ast.TypeSpec).Name.Name
				case token.CONST:
					key = "0const " + specName(d.Specs[0])
				case token.VAR:
					key = "0var " + specName(d.Specs[0])
				default:
					continue
				}
				if err := add(key, d); err != nil {
					return "", err
				}
			}
		}
	}

	sort.Slice(decls, func(i, j int) bool { return decls[i].key < decls[j].key })
	var b strings.Builder
	b.WriteString("# Exported API of package ltp — maintained by scripts/apidiff.\n")
	b.WriteString("# Regenerate with: go run ./scripts/apidiff -update\n")
	for _, d := range decls {
		b.WriteString("\n")
		b.WriteString(d.text)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// specName returns the first name a const/var spec declares.
func specName(s ast.Spec) string {
	if v, ok := s.(*ast.ValueSpec); ok && len(v.Names) > 0 {
		return v.Names[0].Name
	}
	return ""
}

// printDiff emits a minimal line-level diff (old lines prefixed -, new
// lines prefixed +) good enough to spot the changed symbol.
func printDiff(w *os.File, want, got string) {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	for _, l := range wantLines {
		if !gotSet[l] && strings.TrimSpace(l) != "" {
			fmt.Fprintln(w, "-", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] && strings.TrimSpace(l) != "" {
			fmt.Fprintln(w, "+", l)
		}
	}
}
