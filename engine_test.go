package ltp_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ltp"
	"ltp/internal/cache"
)

// engineSpec is a tiny but real simulation for engine tests.
func engineSpec() ltp.RunSpec {
	return ltp.RunSpec{Scenario: "branchy", Scale: 0.05, MaxInsts: 5_000}
}

// newTestEngine builds an engine or fails the test (NewEngine can only
// error on a store path, so store-less tests never hit the branch).
func newTestEngine(tb testing.TB, cfg ltp.EngineConfig) *ltp.Engine {
	tb.Helper()
	e, err := ltp.NewEngine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestEngineRunCached checks the hit path returns the identical result
// without re-simulating.
func TestEngineRunCached(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()

	r1, out1, h1, err := e.RunCached(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if out1 != cache.Miss {
		t.Fatalf("first run outcome = %v; want miss", out1)
	}
	r2, out2, h2, err := e.RunCached(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if out2 != cache.Hit {
		t.Fatalf("second run outcome = %v; want hit", out2)
	}
	if h1 != h2 || h1 == "" {
		t.Fatalf("hashes differ across identical runs: %q vs %q", h1, h2)
	}
	if r1.CPI != r2.CPI || r1.Cycles != r2.Cycles {
		t.Fatalf("cached result differs: CPI %v vs %v", r1.CPI, r2.CPI)
	}
	if st := e.CacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v; want 1 miss, 1 hit", st)
	}
}

// TestEngineConcurrentDuplicates holds the acceptance criterion: N
// concurrent identical submissions execute the cell exactly once
// (run under -race in short mode).
func TestEngineConcurrentDuplicates(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	const n = 12
	var wg sync.WaitGroup
	results := make([]ltp.RunResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, _, err := e.RunCached(context.Background(), engineSpec())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	if st := e.CacheStats(); st.Misses != 1 {
		t.Fatalf("%d concurrent identical submissions simulated %d times; want 1 (stats %+v)", n, st.Misses, st)
	}
	for i := 1; i < n; i++ {
		if results[i].Cycles != results[0].Cycles {
			t.Fatalf("submission %d got a different result", i)
		}
	}
}

// TestSubmitMatrixAsync checks the async campaign completes, matches
// the synchronous runner cell-for-cell, and a resubmission is served
// entirely from cache.
func TestSubmitMatrixAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix comparison is a long test")
	}
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	spec := quickMatrix()
	job, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	p := job.Progress()
	if !p.Finished || p.DoneRuns != p.TotalRuns || p.TotalRuns != job.TotalRuns() {
		t.Fatalf("finished progress inconsistent: %+v", p)
	}

	// Cell-for-cell equal to the synchronous, uncached runner:
	// identical specs must simulate identically on either path.
	sync, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range res.Scenarios {
		for _, cfg := range res.Configs {
			a, b := res.Cell(scn, cfg), sync.Cell(scn, cfg)
			if a == nil || b == nil {
				t.Fatalf("missing cell %s/%s", scn, cfg)
			}
			if a.CPI != b.CPI {
				t.Fatalf("cell %s/%s: async CPI %+v != sync %+v", scn, cfg, a.CPI, b.CPI)
			}
		}
	}

	// Resubmission: every run served from cache, none simulated.
	job2, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job2.Hash() != job.Hash() {
		t.Fatalf("identical campaigns hash differently")
	}
	if _, err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := job2.Progress(); p.CacheHits != int64(p.TotalRuns) || p.CacheMisses != 0 {
		t.Fatalf("resubmission progress = %+v; want all hits", p)
	}
}

// TestSubmitMatrixSharedCells checks two concurrent overlapping
// campaigns compute each distinct cell once (short-mode, race-covered).
func TestSubmitMatrixSharedCells(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	spec := ltp.MatrixSpec{
		Scenarios:   []string{"branchy"},
		Configs:     []ltp.MatrixConfig{{Name: "IQ64"}},
		Seeds:       2,
		Scale:       0.05,
		DetailInsts: 5_000,
	}
	jobA, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	resA, errA := jobA.Wait()
	resB, errB := jobB.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if st := e.CacheStats(); st.Misses != 2 {
		t.Fatalf("two overlapping campaigns simulated %d cells; want 2 distinct (stats %+v)", st.Misses, st)
	}
	a, b := resA.Cell("branchy", "IQ64"), resB.Cell("branchy", "IQ64")
	if a.CPI != b.CPI {
		t.Fatalf("overlapping campaigns disagree: %+v vs %+v", a.CPI, b.CPI)
	}
}

// TestSubmitMatrixError checks a failing cell surfaces through Wait.
func TestSubmitMatrixError(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()
	if _, err := e.SubmitMatrix(ltp.MatrixSpec{Scenarios: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// slowSweep returns a sweep whose cells take long enough (hundreds of
// milliseconds each) that a test can reliably cancel it mid-flight.
func slowSweep(cells int) ltp.SweepSpec {
	axis := ltp.SweepAxis{Name: "seed", Replicate: true}
	for k := 0; k < cells; k++ {
		seed := int64(k)
		axis.Points = append(axis.Points, ltp.SweepPoint{
			Name: string(rune('a' + k)), Patch: ltp.RunPatch{Seed: &seed},
		})
	}
	return ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 600_000},
		Axes: []ltp.SweepAxis{axis},
	}
}

// TestJobCancelMidFlight holds the cancellation acceptance criterion:
// cancelling a sweep mid-flight stops the remaining cells within one
// cell boundary — the in-flight cell aborts mid-pipeline, queued cells
// never simulate — and the job settles as canceled.
func TestJobCancelMidFlight(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 1})
	defer e.Close()

	const cells = 6
	job, err := e.Submit(context.Background(), slowSweep(cells))
	if err != nil {
		t.Fatal(err)
	}
	// Let the first cell get under way, then cancel.
	time.Sleep(100 * time.Millisecond)
	canceledAt := time.Now()
	job.Cancel()

	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job never finished")
	}
	// The in-flight cell aborts within ~1ms of cancel (pipeline-level
	// cancellation checks); 1s is a generous CI bound that still rules
	// out "the cell ran to completion".
	if settle := time.Since(canceledAt); settle > time.Second {
		t.Fatalf("cancel took %v to settle; want well under a cell boundary", settle)
	}
	if _, err := job.Wait(); !errors.Is(err, ltp.ErrJobCanceled) {
		t.Fatalf("Wait err = %v; want ErrJobCanceled", err)
	}
	if !job.Canceled() {
		t.Fatal("job does not report canceled")
	}
	p := job.Progress()
	if p.DoneRuns+p.CanceledRuns != cells {
		t.Fatalf("progress = %+v; want done+canceled == %d", p, cells)
	}
	if p.CanceledRuns == 0 {
		t.Skip("every cell finished before the cancel landed (very fast machine)")
	}
	// The stream closes without delivering the abandoned cells.
	var streamed int
	for range job.Cells() {
		streamed++
	}
	if streamed != p.DoneRuns {
		t.Fatalf("stream delivered %d cells; want DoneRuns = %d", streamed, p.DoneRuns)
	}

	// No stale cancelled entry may be served: resubmitting the LAST
	// cell — guaranteed still queued when the cancel landed, since
	// parallelism is 1 — must actually simulate it.
	misses0 := e.CacheStats().Misses
	lastSeed := int64(cells - 1)
	job2, err := e.Submit(context.Background(), ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 600_000},
		Axes: []ltp.SweepAxis{{Name: "seed", Replicate: true, Points: []ltp.SweepPoint{
			{Name: "last", Patch: ltp.RunPatch{Seed: &lastSeed}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	if e.CacheStats().Misses == misses0 {
		t.Fatal("resubmission after cancel simulated nothing; cancelled cells were served from cache")
	}
}

// TestRunCachedCanceledWaiterKeepsEntry exercises the engine-level
// single-flight contract: with two concurrent identical RunCached
// calls, cancelling one must not poison the shared cache entry — the
// survivor gets a result and a resubmission is a hit.
func TestRunCachedCanceledWaiterKeepsEntry(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 2})
	defer e.Close()

	spec := ltp.RunSpec{Scenario: "ptrchase", Scale: 0.1, MaxInsts: 400_000}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := e.RunCached(ctx, spec)
		errCh <- err
	}()
	resCh := make(chan error, 1)
	go func() {
		_, _, _, err := e.RunCached(context.Background(), spec)
		resCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller err = %v; want context.Canceled", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("surviving caller err = %v; want success", err)
	}
	if _, out, _, err := e.RunCached(context.Background(), spec); err != nil || out != cache.Hit {
		t.Fatalf("post-cancel resubmit = %v, %v; want hit", out, err)
	}
}

// TestEngineCloseNoGoroutineLeak asserts (under -race in short mode)
// that Close drains every worker and coordinator goroutine: the
// process-wide goroutine count settles back to its pre-engine level.
func TestEngineCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	if _, _, _, err := e.RunCached(context.Background(), engineSpec()); err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(context.Background(), slowSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	if _, err := job.Wait(); err == nil {
		t.Fatal("cancelled job reported success")
	}
	e.Close()

	// Settle loop: cancelled contexts and pool workers unwind within
	// microseconds, but give the scheduler room under -race.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d -> %d\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
