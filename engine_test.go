package ltp_test

import (
	"sync"
	"testing"

	"ltp"
	"ltp/internal/cache"
)

// engineSpec is a tiny but real simulation for engine tests.
func engineSpec() ltp.RunSpec {
	return ltp.RunSpec{Scenario: "branchy", Scale: 0.05, MaxInsts: 5_000}
}

// TestEngineRunCached checks the hit path returns the identical result
// without re-simulating.
func TestEngineRunCached(t *testing.T) {
	e := ltp.NewEngine(ltp.EngineConfig{Parallelism: 2})
	defer e.Close()

	r1, out1, h1, err := e.RunCached(engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if out1 != cache.Miss {
		t.Fatalf("first run outcome = %v; want miss", out1)
	}
	r2, out2, h2, err := e.RunCached(engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if out2 != cache.Hit {
		t.Fatalf("second run outcome = %v; want hit", out2)
	}
	if h1 != h2 || h1 == "" {
		t.Fatalf("hashes differ across identical runs: %q vs %q", h1, h2)
	}
	if r1.CPI != r2.CPI || r1.Cycles != r2.Cycles {
		t.Fatalf("cached result differs: CPI %v vs %v", r1.CPI, r2.CPI)
	}
	if st := e.CacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v; want 1 miss, 1 hit", st)
	}
}

// TestEngineConcurrentDuplicates holds the acceptance criterion: N
// concurrent identical submissions execute the cell exactly once
// (run under -race in short mode).
func TestEngineConcurrentDuplicates(t *testing.T) {
	e := ltp.NewEngine(ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	const n = 12
	var wg sync.WaitGroup
	results := make([]ltp.RunResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, _, err := e.RunCached(engineSpec())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	if st := e.CacheStats(); st.Misses != 1 {
		t.Fatalf("%d concurrent identical submissions simulated %d times; want 1 (stats %+v)", n, st.Misses, st)
	}
	for i := 1; i < n; i++ {
		if results[i].Cycles != results[0].Cycles {
			t.Fatalf("submission %d got a different result", i)
		}
	}
}

// TestSubmitMatrixAsync checks the async campaign completes, matches
// the synchronous runner cell-for-cell, and a resubmission is served
// entirely from cache.
func TestSubmitMatrixAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix comparison is a long test")
	}
	e := ltp.NewEngine(ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	spec := quickMatrix()
	job, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	p := job.Progress()
	if !p.Finished || p.DoneRuns != p.TotalRuns || p.TotalRuns != job.TotalRuns() {
		t.Fatalf("finished progress inconsistent: %+v", p)
	}

	// Cell-for-cell equal to the synchronous, uncached runner:
	// identical specs must simulate identically on either path.
	sync, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range res.Scenarios {
		for _, cfg := range res.Configs {
			a, b := res.Cell(scn, cfg), sync.Cell(scn, cfg)
			if a == nil || b == nil {
				t.Fatalf("missing cell %s/%s", scn, cfg)
			}
			if a.CPI != b.CPI {
				t.Fatalf("cell %s/%s: async CPI %+v != sync %+v", scn, cfg, a.CPI, b.CPI)
			}
		}
	}

	// Resubmission: every run served from cache, none simulated.
	job2, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job2.Hash() != job.Hash() {
		t.Fatalf("identical campaigns hash differently")
	}
	if _, err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := job2.Progress(); p.CacheHits != int64(p.TotalRuns) || p.CacheMisses != 0 {
		t.Fatalf("resubmission progress = %+v; want all hits", p)
	}
}

// TestSubmitMatrixSharedCells checks two concurrent overlapping
// campaigns compute each distinct cell once (short-mode, race-covered).
func TestSubmitMatrixSharedCells(t *testing.T) {
	e := ltp.NewEngine(ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	spec := ltp.MatrixSpec{
		Scenarios:   []string{"branchy"},
		Configs:     []ltp.MatrixConfig{{Name: "IQ64"}},
		Seeds:       2,
		Scale:       0.05,
		DetailInsts: 5_000,
	}
	jobA, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	resA, errA := jobA.Wait()
	resB, errB := jobB.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if st := e.CacheStats(); st.Misses != 2 {
		t.Fatalf("two overlapping campaigns simulated %d cells; want 2 distinct (stats %+v)", st.Misses, st)
	}
	a, b := resA.Cell("branchy", "IQ64"), resB.Cell("branchy", "IQ64")
	if a.CPI != b.CPI {
		t.Fatalf("overlapping campaigns disagree: %+v vs %+v", a.CPI, b.CPI)
	}
}

// TestSubmitMatrixError checks a failing cell surfaces through Wait.
func TestSubmitMatrixError(t *testing.T) {
	e := ltp.NewEngine(ltp.EngineConfig{Parallelism: 2})
	defer e.Close()
	if _, err := e.SubmitMatrix(ltp.MatrixSpec{Scenarios: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
