// Benchmarks: one per table/figure of the paper (DESIGN.md §4). Each
// figure benchmark regenerates the corresponding rows/series with reduced
// budgets and prints them, so `go test -bench=.` doubles as the experiment
// harness smoke run; cmd/ltpexperiments runs the full-size campaign.
//
// Micro-benchmarks of the simulator itself (instructions per second,
// classification-table costs) come after the figure benchmarks.
package ltp_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/experiment"
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/sim"
	"ltp/internal/workload"
)

// benchSuite returns a fresh, bench-sized experiment suite.
func benchSuite() *experiment.Suite {
	s := experiment.NewSuite(0.05, 8_000, 25_000)
	s.Quiet = true
	return s
}

var printOnce sync.Map

// printTables prints the regenerated rows once per benchmark name.
func printTables(name string, tables ...*experiment.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Println("\n=== " + name + " (bench-sized budgets; see EXPERIMENTS.md for full runs) ===")
	for _, t := range tables {
		fmt.Println(t.String())
	}
}

// BenchmarkTable1Baseline measures a full baseline-configuration
// simulation (Table 1 core) on the paper's example loop.
func BenchmarkTable1Baseline(b *testing.B) {
	if _, loaded := printOnce.LoadOrStore("table1", true); !loaded {
		fmt.Println(experiment.Table1())
	}
	for i := 0; i < b.N; i++ {
		r := ltp.MustRun(ltp.RunSpec{
			Workload: "indirect", Scale: 0.05,
			WarmInsts: 8_000, MaxInsts: 25_000,
		})
		b.ReportMetric(r.CPI, "CPI")
	}
}

// BenchmarkFig1 regenerates Figure 1 (CPI, outstanding requests, resource
// usage for IQ:32 / IQ:32+LTP / IQ:256).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		tables := s.Fig1()
		printTables("Figure 1", tables...)
		// Headline metric: MLP recovered by LTP relative to IQ:256
		// (paper: LTP achieves about half; our kernels nearly all).
		mlpLTP := tables[1].Rows[1].Cells[0]
		mlp256 := tables[1].Rows[2].Cells[0]
		if mlp256 > 0 {
			b.ReportMetric(mlpLTP/mlp256, "MLPfrac")
		}
	}
}

// BenchmarkFig3 regenerates the Figure 3 worked example (tiny IQ).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		t := s.Fig3()
		printTables("Figure 3", t)
		b.ReportMetric(t.Rows[0].Cells[2]-t.Rows[1].Cells[2], "IQfreed")
	}
}

// fig6Once caches the limit study across the four row benchmarks (the
// suite computes all rows in one campaign; re-running it per row would
// quadruple the bench time without measuring anything new).
var (
	fig6Once   sync.Once
	fig6Tables []*experiment.Table
)

// fig6Bench runs one resource row of the Figure 6 limit study.
func fig6Bench(b *testing.B, row string) {
	for i := 0; i < b.N; i++ {
		fig6Once.Do(func() {
			s := benchSuite()
			fig6Tables = s.Fig6()
		})
		var keep []*experiment.Table
		for _, t := range fig6Tables {
			if containsRow(t.Title, row) {
				keep = append(keep, t)
			}
		}
		printTables("Figure 6 "+row, keep...)
	}
}

func containsRow(title, row string) bool {
	return len(title) > 0 && (stringContains(title, "["+row+" sweep"))
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkFig6IQ..SQ regenerate the four rows of the limit study.
// (The suite computes all rows; each benchmark prints its own row.)
func BenchmarkFig6IQ(b *testing.B) { fig6Bench(b, "IQ") }

// BenchmarkFig6RF regenerates the register-file row of Figure 6.
func BenchmarkFig6RF(b *testing.B) { fig6Bench(b, "RF") }

// BenchmarkFig6LQ regenerates the load-queue row of Figure 6.
func BenchmarkFig6LQ(b *testing.B) { fig6Bench(b, "LQ") }

// BenchmarkFig6SQ regenerates the store-queue row of Figure 6.
func BenchmarkFig6SQ(b *testing.B) { fig6Bench(b, "SQ") }

// nowSeconds returns a monotonic-enough wall-clock reading in seconds
// for coarse speedup metrics.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// sampledFig6Once holds the wall-clock of the cycle-accurate reference
// sweep so BenchmarkSampledFig6IQ can report a speedup without paying
// for the reference on every benchmark iteration.
var (
	sampledFig6Once      sync.Once
	sampledFig6CycleWall float64
)

// sampledFig6Specs returns the Figure 6 IQ-row-equivalent sweep: the
// long hashprobe kernel at four IQ sizes, on the given backend.
func sampledFig6Specs(backend string) []ltp.RunSpec {
	var specs []ltp.RunSpec
	for _, iq := range []int{128, 64, 32, 16} {
		cfg := pipeline.DefaultConfig()
		cfg.IQSize = iq
		specs = append(specs, ltp.RunSpec{
			Workload: "hashprobe", Scale: 0.5,
			WarmInsts: 50_000, MaxInsts: 2_000_000,
			UseLTP: true, Pipeline: &cfg,
			Backend: backend, Intervals: 16,
		})
	}
	return specs
}

// BenchmarkSampledFig6IQ regenerates the Figure 6 IQ row on the
// sampled backend (K=16 checkpointed intervals per cell) over the
// largest kernel budget in the campaign, and reports the wall-clock
// speedup versus the same four cells run cycle-accurately (measured
// once). The accuracy side of the trade — sampled CPI inside the
// reported sampling CI of the cycle CPI — is enforced by
// TestSampledEstimateTracksCycle and TestSampledSpeedup.
func BenchmarkSampledFig6IQ(b *testing.B) {
	run := func(specs []ltp.RunSpec) float64 {
		start := nowSeconds()
		for _, spec := range specs {
			if _, err := ltp.RunContext(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
		}
		return nowSeconds() - start
	}
	sampledFig6Once.Do(func() {
		sampledFig6CycleWall = run(sampledFig6Specs(ltp.BackendCycle))
	})
	b.ResetTimer()
	var wall float64
	for i := 0; i < b.N; i++ {
		wall = run(sampledFig6Specs(ltp.BackendSampled))
	}
	if wall > 0 {
		b.ReportMetric(sampledFig6CycleWall/wall, "xCycle")
	}
	b.ReportMetric(4*2_000_000, "insts/op")
}

// BenchmarkFig7 regenerates the LTP-utilization figure.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		tables := s.Fig7()
		printTables("Figure 7", tables...)
	}
}

// BenchmarkFig10 regenerates the entries/ports performance + ED²P sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		tables := s.Fig10()
		printTables("Figure 10", tables...)
		// Headline: ED2P improvement of the 128/4p design (sensitive).
		b.ReportMetric(tables[1].Rows[2].Cells[1], "ED2P%")
	}
}

// BenchmarkFig11 regenerates the ticket-count sweep.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		tables := s.Fig11()
		printTables("Figure 11", tables...)
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		t := s.Ablation()
		printTables("Ablations", t)
	}
}

// BenchmarkUITSweep regenerates the §5.6 UIT size sensitivity numbers.
func BenchmarkUITSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		t := s.UITSweep()
		printTables("UIT sweep", t)
	}
}

// BenchmarkWIBvsLTP regenerates the related-work baseline comparison.
func BenchmarkWIBvsLTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		printTables("WIB vs LTP", s.WIBvsLTP()...)
	}
}

// BenchmarkDRAMModelStudy regenerates the memory-model sensitivity check.
func BenchmarkDRAMModelStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		printTables("DRAM model study", s.DRAMModelStudy())
	}
}

// --- Simulator micro-benchmarks ---

// BenchmarkPipelineKIPS measures baseline simulation speed in committed
// instructions per benchmark op (use ns/op to derive kilo-insts/sec).
func BenchmarkPipelineKIPS(b *testing.B) {
	wl, _ := workload.ByName("indirectwork")
	program := wl.Build(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pipeline.DefaultConfig(), prog.NewEmulator(program), pipeline.NullParker{})
		p.Run(20_000, 0)
	}
	b.ReportMetric(20_000, "insts/op")
}

// BenchmarkPipelineLTPKIPS measures simulation speed with the LTP attached.
func BenchmarkPipelineLTPKIPS(b *testing.B) {
	wl, _ := workload.ByName("indirectwork")
	program := wl.Build(0.05)
	pcfg := pipeline.DefaultConfig()
	pcfg.IQSize = 32
	pcfg.IntRegs, pcfg.FPRegs = 96, 96
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := core.New(core.DefaultConfig(), pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		p := pipeline.New(pcfg, prog.NewEmulator(program), unit)
		p.Run(20_000, 0)
	}
	b.ReportMetric(20_000, "insts/op")
}

// BenchmarkTAGE measures cycle-simulation speed with the TAGE
// predictor selected, against BenchmarkPipelineKIPS's gshare baseline
// — the predictor registry must stay off the hot path when idle and
// TAGE's tagged-table walk must not dominate the cycle loop.
func BenchmarkTAGE(b *testing.B) {
	wl, _ := workload.ByName("indirectwork")
	program := wl.Build(0.05)
	pcfg := pipeline.DefaultConfig()
	pcfg.BranchPred = "tage"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pcfg, prog.NewEmulator(program), pipeline.NullParker{})
		p.Run(20_000, 0)
	}
	b.ReportMetric(20_000, "insts/op")
}

// BenchmarkContention measures cycle-simulation speed with a memhog
// co-runner attached — the shared-hierarchy replay adds per-cycle work
// (Tick plus the below-L1 walks), so this row tracks the contention
// subsystem's overhead on the trajectory.
func BenchmarkContention(b *testing.B) {
	spec := ltp.RunSpec{
		Scenario:  "ptrchase",
		Scale:     0.05,
		MaxInsts:  20_000,
		Corunners: []ltp.Corunner{{Scenario: "memhog"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ltp.RunContext(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(20_000, "insts/op")
}

// BenchmarkModelBackendKIPS measures the interval-model backend's
// estimation speed on the same workload as BenchmarkPipelineKIPS, so
// the trajectory records the model-versus-cycle throughput ratio.
func BenchmarkModelBackendKIPS(b *testing.B) {
	spec := ltp.RunSpec{
		Workload: "indirectwork",
		Scale:    0.05,
		MaxInsts: 20_000,
		Backend:  ltp.BackendModel,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ltp.RunContext(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(20_000, "insts/op")
}

// BenchmarkTriageSweep measures a full two-phase fidelity-triage
// campaign (2 scenarios × 2 configs × 2 seeds estimated, best cell
// re-measured) through the engine.
func BenchmarkTriageSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newTestEngine(b, ltp.EngineConfig{})
		seeds := ltp.SweepAxis{Name: "seed", Replicate: true}
		for s := int64(1); s <= 2; s++ {
			s := s
			seeds.Points = append(seeds.Points, ltp.SweepPoint{
				Name: fmt.Sprintf("seed%d", s), Patch: ltp.RunPatch{Seed: &s},
			})
		}
		iq := 32
		branchy, ptrchase := "branchy", "ptrchase"
		spec := ltp.SweepSpec{
			Base: ltp.RunSpec{Scale: 0.05, MaxInsts: 5_000},
			Axes: []ltp.SweepAxis{
				{Name: "scenario", Points: []ltp.SweepPoint{
					{Name: branchy, Patch: ltp.RunPatch{Scenario: &branchy}},
					{Name: ptrchase, Patch: ltp.RunPatch{Scenario: &ptrchase}},
				}},
				{Name: "config", Points: []ltp.SweepPoint{
					{Name: "IQ64", Patch: ltp.RunPatch{}},
					{Name: "IQ32", Patch: ltp.RunPatch{IQSize: &iq}},
				}},
				seeds,
			},
			Triage: &ltp.TriageSpec{TopK: 1},
		}
		job, err := e.Submit(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := job.Wait(); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkWarmFast measures the functional warm-up path (emulator
// stepping + cache/bpred/LTP touch hooks) per 50k warmed instructions.
func BenchmarkWarmFast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ltp.MustRun(ltp.RunSpec{
			Workload: "indirectwork", Scale: 0.1,
			WarmInsts: 50_000, MaxInsts: 1_000, WarmMode: ltp.WarmFast,
			UseLTP: true,
		})
		_ = r
	}
	b.ReportMetric(50_000, "warminsts/op")
}

// BenchmarkWarmDetailed measures the reference full-pipeline warm-up on
// the same region, for the fast/detailed speedup ratio.
func BenchmarkWarmDetailed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ltp.MustRun(ltp.RunSpec{
			Workload: "indirectwork", Scale: 0.1,
			WarmInsts: 50_000, MaxInsts: 1_000, WarmMode: ltp.WarmDetailed,
			UseLTP: true,
		})
		_ = r
	}
	b.ReportMetric(50_000, "warminsts/op")
}

// BenchmarkOracleBuild measures the limit-study classification pre-pass.
func BenchmarkOracleBuild(b *testing.B) {
	wl, _ := workload.ByName("indirectwork")
	program := wl.Build(0.05)
	hcfg := mem.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildOracle(program, 50_000, hcfg, 256)
	}
	b.ReportMetric(50_000, "insts/op")
}

// BenchmarkEmulator measures raw functional emulation speed.
func BenchmarkEmulator(b *testing.B) {
	wl, _ := workload.ByName("gather")
	program := wl.Build(0.05)
	em := prog.NewEmulator(program)
	var u isa.Uop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Next(&u)
	}
}

// BenchmarkMatrix runs the scenario-matrix campaign at bench budgets
// (every family x the default config triple x 2 seeds) and prints the
// mean ± CI table, folding the matrix into the bench smoke run.
func BenchmarkMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltp.RunMatrix(ltp.MatrixSpec{
			Scale:       0.05,
			WarmInsts:   8_000,
			DetailInsts: 25_000,
			Seeds:       2,
		})
		if err != nil {
			b.Fatal(err)
		}
		printTables("Scenario matrix", experiment.MatrixTable(res))
	}
}

// BenchmarkTraceReplay measures trace decode + pipeline replay speed
// against BenchmarkTable1Baseline's emulate-and-simulate path.
func BenchmarkTraceReplay(b *testing.B) {
	var buf bytes.Buffer
	spec := ltp.RunSpec{
		Workload: "indirect", Scale: 0.05,
		WarmInsts: 8_000, MaxInsts: 25_000,
		RecordTo: &buf,
	}
	if _, err := ltp.Run(spec); err != nil {
		b.Fatal(err)
	}
	spec.RecordTo = nil
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.ReplayFrom = bytes.NewReader(raw)
		r, err := ltp.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPI, "CPI")
	}
}

// batchBenchSpecs builds the 64-lane model sweep used by the batched-
// evaluation benchmarks: a warm-heavy hashjoin stream fanned into
// IQ-size × ROB-size × parking lanes, the shape an interactive
// structure-sizing sweep submits. All lanes share one functional
// stream and budgets, so the model backend evaluates them in one pass.
func batchBenchSpecs() []sim.Spec {
	var specs []sim.Spec
	for _, iq := range []int{16, 24, 32, 40, 48, 56, 64, 80} {
		for _, rob := range []int{128, 160, 192, 224} {
			for _, useLTP := range []bool{false, true} {
				cfg := pipeline.DefaultConfig()
				cfg.IQSize = iq
				cfg.ROBSize = rob
				var lcfg *core.Config
				if useLTP {
					c := core.DefaultConfig()
					lcfg = &c
				}
				specs = append(specs, sim.Spec{
					Pipeline:  cfg,
					LTP:       lcfg,
					WarmInsts: 1_200_000,
					MaxInsts:  40_000,
				})
			}
		}
	}
	return specs
}

// batchBenchStream builds the shared hashjoin stream at bench scale.
func batchBenchStream(b *testing.B) prog.Stream {
	b.Helper()
	fam, err := workload.FamilyByName("hashjoin")
	if err != nil {
		b.Fatal(err)
	}
	return prog.NewEmulator(fam.Build(nil, 0.5, 1))
}

// BenchmarkModelSweepBatch measures the batched model path: one op is
// a whole 64-cell sweep through RunBatch — one warm pass, one measured
// emulation, 64 arena-backed timing lanes. Compare ns/op here against
// 64× BenchmarkModelSweepPerCell's to read the amortized speedup (the
// PR-10 acceptance floor is 5×).
func BenchmarkModelSweepBatch(b *testing.B) {
	backend, err := sim.Lookup("model")
	if err != nil {
		b.Fatal(err)
	}
	bb := backend.(sim.BatchBackend)
	specs := batchBenchSpecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := make([]sim.Spec, len(specs))
		copy(run, specs)
		run[0].Stream = batchBenchStream(b)
		for j, br := range bb.RunBatch(context.Background(), run) {
			if br.Err != nil {
				b.Fatalf("lane %d: %v", j, br.Err)
			}
		}
	}
	b.ReportMetric(float64(len(specs)), "cells/op")
	b.ReportMetric(float64(len(specs))*40_000, "insts/op")
}

// BenchmarkModelSweepPerCell is BenchmarkModelSweepBatch's denominator:
// the same 64 cells evaluated one Run at a time, each paying its own
// warm-up and emulation (WarmKey is empty, so the warm-group cache
// stays out of the measurement). One op is ONE cell, so the amortized
// batch speedup is (this ns/op × 64) / batch ns/op.
func BenchmarkModelSweepPerCell(b *testing.B) {
	backend, err := sim.Lookup("model")
	if err != nil {
		b.Fatal(err)
	}
	specs := batchBenchSpecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specs[i%len(specs)]
		spec.Stream = batchBenchStream(b)
		if _, err := backend.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(40_000, "insts/op")
}
