package ltp_test

import (
	"testing"

	"ltp"
)

// quickMatrix is the smallest campaign that still exercises seed
// replication, the LPT pool and the LTP config column.
func quickMatrix() ltp.MatrixSpec {
	return ltp.MatrixSpec{
		Scale:       0.05,
		WarmInsts:   3_000,
		DetailInsts: 8_000,
		Seeds:       3,
		Parallelism: 4,
	}
}

// TestScenarioRunDeterminism pins the property the whole campaign
// layer rests on: the same RunSpec (same scenario, knobs, scale, seed,
// budgets) simulated twice yields an identical statistics struct.
func TestScenarioRunDeterminism(t *testing.T) {
	for _, scn := range []string{"branchy", "hashjoin", "ptrchase"} {
		spec := ltp.RunSpec{
			Scenario:  scn,
			Seed:      42,
			Scale:     0.05,
			WarmInsts: 3_000,
			MaxInsts:  8_000,
			UseLTP:    true,
		}
		a, err := ltp.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ltp.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Result != b.Result {
			t.Errorf("%s: identical specs diverged:\n a: %+v\n b: %+v", scn, a.Result, b.Result)
		}
		if *a.LTP != *b.LTP {
			t.Errorf("%s: LTP stats diverged across identical runs", scn)
		}
	}
}

// TestMatrixSeedSpread runs one cell with three seeds and asserts the
// aggregation sees real seed-to-seed variation: CI width > 0. This is
// the single-seed blind spot the matrix exists to catch — a campaign
// whose replicates are secretly identical would report CI 0.
func TestMatrixSeedSpread(t *testing.T) {
	spec := quickMatrix()
	spec.Scenarios = []string{"branchy", "hashjoin"}
	spec.Configs = []ltp.MatrixConfig{{Name: "IQ64"}}
	res, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range spec.Scenarios {
		cell := res.Cell(scn, "IQ64")
		if cell == nil {
			t.Fatalf("cell %s/IQ64 missing", scn)
		}
		if cell.CPI.N != 3 {
			t.Errorf("%s: N = %d, want 3", scn, cell.CPI.N)
		}
		if cell.CPI.CI95 <= 0 {
			t.Errorf("%s: CPI CI95 = %v, want > 0 (seeds produced identical CPI?)", scn, cell.CPI.CI95)
		}
		if cell.CPI.Mean <= 0 {
			t.Errorf("%s: CPI mean %v", scn, cell.CPI.Mean)
		}
	}
}

// TestMatrixDeterminism asserts a whole matrix is reproducible: two
// identical campaigns aggregate to identical cells (the worker pool's
// dispatch order must not leak into results).
func TestMatrixDeterminism(t *testing.T) {
	spec := quickMatrix()
	spec.Scenarios = []string{"prodcons"}
	spec.Seeds = 2
	a, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d diverged:\n a: %+v\n b: %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// TestMatrixFullCrossRace drives the full default cross-product
// (every family × all three default configs) through the worker pool
// with ≥ 4 workers. Under `go test -race` (the CI gate) this is the
// scenario-matrix race coverage; it also checks cell bookkeeping and
// that the LTP column actually parks somewhere.
func TestMatrixFullCrossRace(t *testing.T) {
	spec := quickMatrix()
	spec.Seeds = 2
	spec.Parallelism = 6
	res, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	nFams := len(ltp.Scenarios())
	if nFams < 6 {
		t.Fatalf("only %d scenario families", nFams)
	}
	if want := nFams * 3; len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	parkedSomewhere := false
	for _, c := range res.Cells {
		if c.CPI.N != 2 || c.CPI.Mean <= 0 {
			t.Errorf("cell %s/%s malformed: %+v", c.Scenario, c.Config, c.CPI)
		}
		if c.Config == "IQ32+LTP" && c.Parked.Mean > 0 {
			parkedSomewhere = true
		}
	}
	if !parkedSomewhere {
		t.Error("no scenario parked any instructions under IQ32+LTP")
	}
}

// TestMatrixUnknownScenario pins the validation path.
func TestMatrixUnknownScenario(t *testing.T) {
	spec := quickMatrix()
	spec.Scenarios = []string{"no-such-family"}
	if _, err := ltp.RunMatrix(spec); err == nil {
		t.Error("unknown scenario accepted")
	}
}
