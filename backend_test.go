package ltp_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"ltp"
	"ltp/internal/cache"
	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/workload"
)

// backendMatrixConfigs is the default IQ64/IQ32/IQ32+LTP comparison at
// test scale.
func backendMatrixConfigs() []ltp.MatrixConfig {
	return ltp.DefaultMatrixConfigs()
}

// TestModelTracksCycleBackend is the model backend's acceptance
// differential: on every registry kernel, the model must rank the
// default IQ64/IQ32/IQ32+LTP matrix in the same relative CPI order as
// the cycle-accurate backend (pairs within 2% are ties and may land
// either way), and the mean absolute CPI error across the whole grid
// must stay under 15%.
func TestModelTracksCycleBackend(t *testing.T) {
	kernels := ltp.Workloads()
	configs := backendMatrixConfigs()

	// The full grid is 42 cycle-accurate runs; under -short -race the
	// budgets shrink (the ranking is stable well below them — the
	// calibration was fitted at the full-budget grid).
	scale, warm, insts := 0.1, uint64(20_000), uint64(60_000)
	tieTol := 0.02
	if testing.Short() {
		// Smaller budgets are noisier, so near-ties widen with them;
		// the strict 2% bound holds at the calibration budget above.
		scale, warm, insts = 0.05, 8_000, 25_000
		tieTol = 0.05
	}

	type cellKey struct{ k, c int }
	cpis := map[string]map[cellKey]float64{"cycle": {}, "model": {}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	errCh := make(chan error, len(kernels)*len(configs))
	for ki := range kernels {
		for ci := range configs {
			wg.Add(1)
			sem <- struct{}{}
			go func(ki, ci int) {
				defer wg.Done()
				defer func() { <-sem }()
				spec := ltp.RunSpec{
					Workload:  kernels[ki].Name,
					Scale:     scale,
					WarmInsts: warm,
					MaxInsts:  insts,
					Pipeline:  configs[ci].Pipeline,
					UseLTP:    configs[ci].UseLTP,
					LTP:       configs[ci].LTP,
				}
				for _, backend := range []string{ltp.BackendCycle, ltp.BackendModel} {
					spec.Backend = backend
					res, err := ltp.RunContext(context.Background(), spec)
					if err != nil {
						errCh <- fmt.Errorf("%s/%s on %s: %w", kernels[ki].Name, configs[ci].Name, backend, err)
						return
					}
					mu.Lock()
					cpis[backend][cellKey{ki, ci}] = res.CPI
					mu.Unlock()
				}
			}(ki, ci)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var errSum float64
	n := 0
	for ki, k := range kernels {
		for ci := range configs {
			c := cpis["cycle"][cellKey{ki, ci}]
			m := cpis["model"][cellKey{ki, ci}]
			errSum += math.Abs(m-c) / c
			n++
			t.Logf("%-12s %-9s cycle %.3f model %.3f (%+.1f%%)",
				k.Name, configs[ci].Name, c, m, 100*(m-c)/c)
		}
		// Pairwise rank agreement with a 2% tie tolerance.
		for a := 0; a < len(configs); a++ {
			for b := a + 1; b < len(configs); b++ {
				ca, cb := cpis["cycle"][cellKey{ki, a}], cpis["cycle"][cellKey{ki, b}]
				ma, mb := cpis["model"][cellKey{ki, a}], cpis["model"][cellKey{ki, b}]
				if math.Abs(ca-cb)/math.Max(ca, cb) < tieTol {
					continue // a measured tie may land either way
				}
				if (ca < cb) != (ma < mb) {
					t.Errorf("%s: model ranks %s vs %s backwards: cycle %.3f/%.3f, model %.3f/%.3f",
						k.Name, configs[a].Name, configs[b].Name, ca, cb, ma, mb)
				}
			}
		}
	}
	mean := errSum / float64(n)
	t.Logf("mean absolute CPI error across %d cells: %.1f%%", n, 100*mean)
	if mean > 0.15 {
		t.Fatalf("mean absolute CPI error %.1f%% exceeds the 15%% calibration bound", 100*mean)
	}
}

// TestModelTracksScenarioFamilies extends the model differential to
// the generated scenario families with per-family error tolerances
// instead of one blanket bound. hashjoin is the load-bearing row: the
// real mechanism's finite UIT misclassifies its hash-probe dependence
// chains, and the model — which trains the same bounded set-associative
// table with the same one-hop backward propagation — must track the
// cycle backend there too instead of estimating through a too-clean
// urgency oracle (the DESIGN.md §10 known miss).
func TestModelTracksScenarioFamilies(t *testing.T) {
	configs := backendMatrixConfigs()
	// Per-family mean-absolute-CPI-error bound across the config grid.
	// The families are noisier than the fixed registry kernels (hashed
	// layouts, data-dependent branches), so each carries its own
	// calibrated tolerance; a regression in any family trips its own
	// bound rather than hiding in a global mean.
	tol := map[string]float64{
		"ptrchase":  0.05,
		"gemmblock": 0.05,
		// hashjoin is the family whose urgency misclassification the
		// unbounded-map model could not reproduce; the finite-UIT model
		// holds it under 8%, and this bound keeps it there.
		"hashjoin": 0.08,
		"prodcons": 0.05,
		// branchy's miss is a branch-bubble calibration artifact (flat
		// across configs, no LTP involvement), not an urgency one.
		"branchy": 0.15,
		"phased":  0.08,
	}
	scale, warm, insts := 0.05, uint64(8_000), uint64(25_000)

	type cell struct{ cycle, model float64 }
	results := make(map[string][]cell)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	errCh := make(chan error, len(tol)*len(configs))
	// Populate every map entry before any worker starts: the workers
	// index into the map concurrently, and a mapassign racing their
	// reads trips the race detector even though the slices are disjoint.
	for fam := range tol {
		results[fam] = make([]cell, len(configs))
	}
	for fam := range tol {
		for ci := range configs {
			wg.Add(1)
			sem <- struct{}{}
			go func(fam string, ci int) {
				defer wg.Done()
				defer func() { <-sem }()
				spec := ltp.RunSpec{
					Scenario:  fam,
					Seed:      3,
					Scale:     scale,
					WarmInsts: warm,
					MaxInsts:  insts,
					Pipeline:  configs[ci].Pipeline,
					UseLTP:    configs[ci].UseLTP,
					LTP:       configs[ci].LTP,
				}
				var c cell
				for _, backend := range []string{ltp.BackendCycle, ltp.BackendModel} {
					spec.Backend = backend
					res, err := ltp.RunContext(context.Background(), spec)
					if err != nil {
						errCh <- fmt.Errorf("%s/%s on %s: %w", fam, configs[ci].Name, backend, err)
						return
					}
					if backend == ltp.BackendCycle {
						c.cycle = res.CPI
					} else {
						c.model = res.CPI
					}
				}
				mu.Lock()
				results[fam][ci] = c
				mu.Unlock()
			}(fam, ci)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for fam, bound := range tol {
		var errSum float64
		for ci, c := range results[fam] {
			errSum += math.Abs(c.model-c.cycle) / c.cycle
			t.Logf("%-10s %-9s cycle %.3f model %.3f (%+.1f%%)",
				fam, configs[ci].Name, c.cycle, c.model, 100*(c.model-c.cycle)/c.cycle)
		}
		mean := errSum / float64(len(results[fam]))
		if mean > bound {
			t.Errorf("%s: mean absolute CPI error %.1f%% exceeds the family bound %.0f%%",
				fam, 100*mean, 100*bound)
		}
	}
}

// TestBackendHashesNeverCollide pins the cache-keying contract: the
// same run at different fidelities hashes differently, and the default
// backend spelling ("") hashes identically to its explicit name.
func TestBackendHashesNeverCollide(t *testing.T) {
	spec := ltp.RunSpec{Workload: "indirect", MaxInsts: 10_000}
	hDefault, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	spec.Backend = ltp.BackendCycle
	hCycle, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	spec.Backend = ltp.BackendModel
	hModel, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hDefault != hCycle {
		t.Fatalf("default backend hash %s != explicit cycle hash %s", hDefault, hCycle)
	}
	if hModel == hCycle {
		t.Fatalf("model and cycle backends hash identically (%s): cached fidelities would collide", hModel)
	}
	spec.Backend = "quantum"
	if _, err := spec.Hash(); err == nil {
		t.Fatal("unknown backend canonicalized without error")
	}
}

// TestModelBackendDeterminism: equal model specs produce identical
// estimates.
func TestModelBackendDeterminism(t *testing.T) {
	spec := ltp.RunSpec{Scenario: "ptrchase", Seed: 7, Scale: 0.05, WarmInsts: 5_000, MaxInsts: 20_000, Backend: ltp.BackendModel}
	a, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result {
		t.Fatalf("model backend is nondeterministic:\n%+v\n%+v", a.Result, b.Result)
	}
}

// TestModelBackendRejectsCycleOnlyFeatures: oracles and trace capture
// have no meaning on the analytical backend and must error loudly —
// including a prebuilt oracle, which would otherwise be silently
// replaced by the model's own urgency heuristic.
func TestModelBackendRejectsCycleOnlyFeatures(t *testing.T) {
	spec := ltp.RunSpec{Workload: "indirect", MaxInsts: 5_000, UseLTP: true, Oracle: true, Backend: ltp.BackendModel}
	if _, err := ltp.RunContext(context.Background(), spec); err == nil {
		t.Fatal("oracle run on the model backend did not error")
	}
	if _, err := spec.Canonical(); err == nil {
		t.Fatal("oracle spec on the model backend canonicalized")
	}

	wl, err := workload.ByName("indirect")
	if err != nil {
		t.Fatal(err)
	}
	pcfg := pipeline.DefaultConfig()
	lcfg := core.DefaultConfig()
	lcfg.Oracle = core.BuildOracle(wl.Build(0.05), 8_192, pcfg.Hier, pcfg.ROBSize)
	prebuilt := ltp.RunSpec{Workload: "indirect", Scale: 0.05, MaxInsts: 5_000,
		UseLTP: true, LTP: &lcfg, Backend: ltp.BackendModel}
	if _, err := ltp.RunContext(context.Background(), prebuilt); err == nil {
		t.Fatal("prebuilt-oracle run on the model backend did not error")
	}
}

// TestModelBackendHonorsMaxCycles: the safety cap halts the estimate
// like it halts the detailed pipeline, so mixed-fidelity comparisons
// measure the same region.
func TestModelBackendHonorsMaxCycles(t *testing.T) {
	spec := ltp.RunSpec{Workload: "ptrchase1", Scale: 0.05, MaxInsts: 50_000, Backend: ltp.BackendModel}
	full, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.MaxCycles = full.Cycles / 4
	capped, err := ltp.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Committed >= full.Committed {
		t.Fatalf("MaxCycles ignored: capped run committed %d of %d", capped.Committed, full.Committed)
	}
	if capped.Cycles > spec.MaxCycles+1_000 {
		t.Fatalf("capped run overshot the cycle cap: %d cycles vs cap %d", capped.Cycles, spec.MaxCycles)
	}
}

// triageSweep is a small scenario × config sweep with seed replication
// used by the triage tests.
func triageSweep(topK int) ltp.SweepSpec {
	seeds := ltp.SweepAxis{Name: "seed", Replicate: true}
	for s := int64(1); s <= 2; s++ {
		s := s
		seeds.Points = append(seeds.Points, ltp.SweepPoint{
			Name: fmt.Sprintf("seed%d", s), Patch: ltp.RunPatch{Seed: &s},
		})
	}
	iq32, regs := 32, 96
	var useLTP = true
	return ltp.SweepSpec{
		Base: ltp.RunSpec{Scale: 0.05, MaxInsts: 4_000},
		Axes: []ltp.SweepAxis{
			{Name: "scenario", Points: []ltp.SweepPoint{
				{Name: "branchy", Patch: ltp.RunPatch{Scenario: strPtr("branchy")}},
				{Name: "ptrchase", Patch: ltp.RunPatch{Scenario: strPtr("ptrchase")}},
			}},
			{Name: "config", Points: []ltp.SweepPoint{
				{Name: "IQ64", Patch: ltp.RunPatch{}},
				{Name: "IQ32+LTP", Patch: ltp.RunPatch{IQSize: &iq32, IntRegs: &regs, FPRegs: &regs, UseLTP: &useLTP}},
			}},
			seeds,
		},
		Triage: &ltp.TriageSpec{TopK: topK},
	}
}

func strPtr(s string) *string { return &s }

// TestTriageSweep drives the two-phase fidelity triage end to end: the
// model pre-pass covers every enumerated run, the TopK best cells
// re-run cycle-accurately as distinct "detail" cell events, and the
// detailed runs are cache-key-identical to directly submitted
// cycle-backend runs.
func TestTriageSweep(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	spec := triageSweep(2)
	job, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	var triageCells, detailCells []ltp.CellResult
	for c := range job.Cells() {
		switch c.Phase {
		case ltp.PhaseTriage:
			triageCells = append(triageCells, c)
		case ltp.PhaseDetail:
			detailCells = append(detailCells, c)
		default:
			t.Errorf("triage sweep emitted unphased cell %+v", c)
		}
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}

	enumerated := 2 * 2 * 2 // scenarios × configs × seeds
	if len(triageCells) != enumerated {
		t.Fatalf("model pre-pass streamed %d cells, want %d", len(triageCells), enumerated)
	}
	wantDetail := 2 * 2 // TopK × replicates
	if len(detailCells) != wantDetail {
		t.Fatalf("detailed phase streamed %d cells, want %d", len(detailCells), wantDetail)
	}
	for _, c := range triageCells {
		if c.Backend != ltp.BackendModel {
			t.Fatalf("triage-phase cell ran on backend %q", c.Backend)
		}
	}
	for _, c := range detailCells {
		if c.Backend != ltp.BackendCycle {
			t.Fatalf("detail-phase cell ran on backend %q", c.Backend)
		}
	}
	p := job.Progress()
	if p.DoneRuns != job.TotalRuns() || p.TotalRuns != enumerated+wantDetail {
		t.Fatalf("triage progress inconsistent: %+v (total %d)", p, job.TotalRuns())
	}

	// Result shape: model estimates for every cell, detailed aggregates
	// for the TopK selection, never pooled.
	if len(res.Cells) != 4 {
		t.Fatalf("triage result has %d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Backend != ltp.BackendModel {
			t.Fatalf("triage estimate cell %v tagged backend %q", c.Coords, c.Backend)
		}
		if c.CPI.N != 2 {
			t.Fatalf("triage estimate cell %v aggregated %d replicates, want 2", c.Coords, c.CPI.N)
		}
	}
	if res.Triage == nil || len(res.Triage.Detailed) != 2 {
		t.Fatalf("triage result missing detailed cells: %+v", res.Triage)
	}
	for _, c := range res.Triage.Detailed {
		if c.Backend != ltp.BackendCycle {
			t.Fatalf("detailed cell %v tagged backend %q", c.Coords, c.Backend)
		}
		if c.CPI.N != 2 {
			t.Fatalf("detailed cell %v aggregated %d replicates, want 2", c.Coords, c.CPI.N)
		}
	}

	// The detailed runs must be hash-identical to direct cycle-backend
	// submissions: resubmitting one through the engine must be a pure
	// cache hit, never a new simulation.
	one := detailCells[0]
	direct := ltp.RunSpec{
		Scenario: one.Coords[0],
		Seed:     int64(one.Replicate) + 1,
		Scale:    0.05, MaxInsts: 4_000,
	}
	if one.Coords[1] == "IQ32+LTP" {
		cfg := pipeline.DefaultConfig()
		cfg.IQSize, cfg.IntRegs, cfg.FPRegs = 32, 96, 96
		direct.Pipeline = &cfg
		direct.UseLTP = true
	}
	dh, err := direct.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if dh != one.Hash {
		t.Fatalf("detailed cell hash %s != direct submission hash %s", one.Hash, dh)
	}
	_, outcome, _, err := e.RunCached(context.Background(), direct)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != cache.Hit {
		t.Fatalf("direct resubmission of a triaged cell was %v, want a cache hit", outcome)
	}
}

// TestTriageValidation pins the triage-specific Canonical rules.
func TestTriageValidation(t *testing.T) {
	// TopK out of range.
	s := triageSweep(0)
	if _, err := s.Canonical(); err == nil {
		t.Fatal("top_k = 0 accepted")
	}
	s = triageSweep(5)
	if _, err := s.Canonical(); err == nil {
		t.Fatal("top_k above the cell count accepted")
	}
	// Triage cells must be cycle-backend cells.
	s = triageSweep(2)
	s.Base.Backend = ltp.BackendModel
	if _, err := s.Canonical(); err == nil {
		t.Fatal("triage over model-backend cells accepted")
	}
	// Oracle cells would make the model pre-pass fail post-admission.
	s = triageSweep(2)
	s.Base.Workload, s.Base.Scenario = "", ""
	s.Base.UseLTP, s.Base.Oracle = true, true
	if _, err := s.Canonical(); err == nil {
		t.Fatal("triage over oracle cells accepted")
	}
}

// TestSweepBackendAxis crosses an explicit backend axis with seed
// replication: each cell aggregates exactly its own fidelity's
// replicates (mean ± CI per backend, never pooled across fidelities).
func TestSweepBackendAxis(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	seeds := ltp.SweepAxis{Name: "seed", Replicate: true}
	for s := int64(1); s <= 3; s++ {
		s := s
		seeds.Points = append(seeds.Points, ltp.SweepPoint{
			Name: fmt.Sprintf("seed%d", s), Patch: ltp.RunPatch{Seed: &s},
		})
	}
	spec := ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "ptrchase", Scale: 0.05, MaxInsts: 4_000},
		Axes: []ltp.SweepAxis{
			{Name: "backend", Points: []ltp.SweepPoint{
				{Name: "cycle", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendCycle)}},
				{Name: "model", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendModel)}},
			}},
			seeds,
		},
	}
	job, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("backend axis produced %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Backend != c.Coords[0] {
			t.Fatalf("cell %v tagged backend %q", c.Coords, c.Backend)
		}
		if c.CPI.N != 3 || c.Replicates != 3 {
			t.Fatalf("cell %v pooled %d samples, want 3 (its own fidelity only)", c.Coords, c.CPI.N)
		}
	}
	cyc, mod := res.Cell("cycle"), res.Cell("model")
	if cyc == nil || mod == nil {
		t.Fatalf("missing per-backend cells: %+v", res.Cells)
	}
	// Seed replication must spread within each fidelity independently.
	if cyc.CPI.Mean == mod.CPI.Mean && cyc.CPI.CI95 == mod.CPI.CI95 {
		t.Fatalf("cycle and model cells aggregated identically (%v): pooled across fidelities?", cyc.CPI)
	}
}

// TestSweepRejectsReplicateBackendAxis: a replicate axis whose patches
// change the backend would pool estimates into measurements; Canonical
// must refuse it.
func TestSweepRejectsReplicateBackendAxis(t *testing.T) {
	spec := ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "ptrchase", Scale: 0.05, MaxInsts: 4_000},
		Axes: []ltp.SweepAxis{
			{Name: "backend", Replicate: true, Points: []ltp.SweepPoint{
				{Name: "cycle", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendCycle)}},
				{Name: "model", Patch: ltp.RunPatch{Backend: strPtr(ltp.BackendModel)}},
			}},
		},
	}
	if _, err := spec.Canonical(); err == nil {
		t.Fatal("replicate backend axis accepted")
	}
}
