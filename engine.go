package ltp

// The campaign engine: the long-lived execution layer behind the
// campaign service (cmd/ltpserved, internal/server). One sched.Pool
// serves interactive single-run requests and batch sweep campaigns
// with tiered LPT ordering under a single parallelism cap, and one
// content-addressed internal/cache deduplicates identical cells across
// overlapping requests: each distinct cell simulates at most once
// process-wide. The v2 surface is context-first: every execution path
// accepts a context, cancellation reaches from the HTTP handler down
// to the pipeline cycle loop, and a submitted Job streams per-cell
// results as they resolve.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ltp/internal/cache"
	"ltp/internal/sched"
	"ltp/internal/store"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Parallelism is the worker-pool size, the hard cap on concurrent
	// simulations across every request (0 = NumCPU).
	Parallelism int
	// CacheEntries bounds the result cache's LRU
	// (0 = cache.DefaultEntries).
	CacheEntries int
	// StorePath, when non-empty, opens (creating if absent) a
	// persistent content-addressed result store at that path and layers
	// it behind the in-memory cache: a cell found there loads instead
	// of simulating, and every fresh simulation appends. The engine
	// owns the handle (single writer per file) and closes it in Close.
	StorePath string
}

// Engine executes runs and sweep campaigns on one shared tiered-LPT
// worker pool with a content-addressed result cache. It is safe for
// concurrent use; create one per process (or use DefaultEngine) so the
// parallelism cap and the cell deduplication are global.
type Engine struct {
	pool  *sched.Pool
	cache *cache.Cache
	// store is the persistent result tier (nil without StorePath); it
	// backs the cache via storeBacking and closes with the engine.
	store *store.Store
	// jobs tracks in-flight Submit coordinators so Close can wait for
	// them before closing the pool; mu/closed gate new jobs against a
	// concurrent Close (WaitGroup Add-after-Wait is undefined
	// otherwise).
	mu     sync.Mutex
	closed bool
	jobs   sync.WaitGroup

	// statMu guards the per-backend run accounting below. A single
	// process-wide EWMA would price a queue of near-free model cells at
	// the cycle backend's mean (over-reporting Retry-After up to its
	// clamp), so both the latency means and the outstanding counts are
	// keyed by backend name.
	statMu sync.Mutex
	// runMeans is the exponentially weighted mean wall-clock seconds of
	// an actually simulated cell, per backend.
	runMeans map[string]float64
	// outstanding counts cells handed to the pool but not yet resolved,
	// per backend (cache hits and shared waiters never enter).
	outstanding map[string]int
}

// NewEngine starts an engine; Close releases its workers (and the
// persistent store, if configured). The only error source is opening
// EngineConfig.StorePath — a store-less config cannot fail.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	e := &Engine{
		pool:  sched.NewPool(cfg.Parallelism),
		cache: cache.New(cfg.CacheEntries),
	}
	if cfg.StorePath != "" {
		st, err := store.Open(cfg.StorePath)
		if err != nil {
			e.pool.Close()
			return nil, err
		}
		e.store = st
		e.cache.SetBacking(storeBacking{st})
	}
	return e, nil
}

// Close waits for every in-flight job and queued run, then stops the
// pool. Submit after (or racing) Close returns an error; a straggler
// RunCached degrades to inline execution (sched.Pool's closed-Submit
// contract) rather than failing. To bound the wait, cancel the
// outstanding jobs first (Job.Cancel) — their remaining cells then
// abort within about a millisecond each.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.jobs.Wait()
	e.pool.Close()
	if e.store != nil {
		// All appends have drained with the jobs and the pool; detach
		// the backing before the handle closes under it.
		e.cache.SetBacking(nil)
		e.store.Close()
	}
}

// Parallelism returns the engine's concurrent-simulation cap.
func (e *Engine) Parallelism() int { return e.pool.Workers() }

// QueuedRuns returns the number of submitted simulations not yet
// started (the service's backpressure signal).
func (e *Engine) QueuedRuns() int { return e.pool.Queued() }

// RunningRuns returns the number of simulations currently executing.
func (e *Engine) RunningRuns() int { return e.pool.Running() }

// CacheStats returns a snapshot of the result-cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.cache.Stats() }

// MeanRunSeconds returns the exponentially weighted mean wall-clock
// duration of a simulated (non-cached) cycle-backend cell, or 0 before
// the first completes. Use MeanRunSecondsFor for the other backends
// and PerRunSeconds for a queue-composition-weighted figure.
func (e *Engine) MeanRunSeconds() float64 {
	return e.MeanRunSecondsFor(BackendCycle)
}

// MeanRunSecondsFor returns the exponentially weighted mean wall-clock
// duration of a simulated (non-cached) cell on the named backend, or 0
// before that backend's first simulation completes.
func (e *Engine) MeanRunSecondsFor(backend string) float64 {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.runMeans[backend]
}

// MeanRunSecondsByBackend returns a snapshot of every backend's EWMA
// mean simulated-cell seconds (backends with no completed simulation
// are absent).
func (e *Engine) MeanRunSecondsByBackend() map[string]float64 {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	out := make(map[string]float64, len(e.runMeans))
	for b, m := range e.runMeans {
		out[b] = m
	}
	return out
}

// OutstandingSeconds estimates the wall-clock seconds of simulation
// work currently queued or running: each outstanding cell weighted by
// its own backend's EWMA mean (one second for a backend that has not
// completed a cell yet). This is the mixed-fidelity Retry-After input —
// a thousand queued model estimates no longer price like a thousand
// cycle runs.
func (e *Engine) OutstandingSeconds() float64 {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	var total float64
	for b, n := range e.outstanding {
		mean := e.runMeans[b]
		if mean <= 0 {
			mean = 1
		}
		total += float64(n) * mean
	}
	return total
}

// PerRunSeconds returns the mean wall-clock of one outstanding cell,
// weighted by the queue's current backend mix, falling back to the
// cycle backend's EWMA when nothing is outstanding.
func (e *Engine) PerRunSeconds() float64 {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	var secs float64
	var n int
	for b, c := range e.outstanding {
		mean := e.runMeans[b]
		if mean <= 0 {
			mean = 1
		}
		secs += float64(c) * mean
		n += c
	}
	if n == 0 {
		return e.runMeans[BackendCycle]
	}
	return secs / float64(n)
}

// noteRunSeconds folds one simulated cell's wall-clock into its
// backend's EWMA.
func (e *Engine) noteRunSeconds(backend string, s float64) {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	if e.runMeans == nil {
		e.runMeans = make(map[string]float64)
	}
	if mean := e.runMeans[backend]; mean > 0 {
		s = 0.8*mean + 0.2*s
	}
	e.runMeans[backend] = s
}

// noteOutstanding adjusts a backend's outstanding-cell count.
func (e *Engine) noteOutstanding(backend string, delta int) {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	if e.outstanding == nil {
		e.outstanding = make(map[string]int)
	}
	if e.outstanding[backend] += delta; e.outstanding[backend] <= 0 {
		delete(e.outstanding, backend)
	}
}

// poolExecutor adapts the engine's scheduler pool to sim.Executor so a
// sampled-backend cell fans its K interval simulations onto the same
// workers. Intervals run at the interactive tier: the cell occupying a
// worker blocks until its batch drains, so letting campaign cells
// queue ahead of its intervals would invert priorities. Work helping
// in RunBatch keeps a fully-busy (even single-worker) pool
// deadlock-free.
type poolExecutor struct{ pool *sched.Pool }

func (x poolExecutor) RunBatch(ctx context.Context, costs []float64, fns []func(context.Context)) {
	x.pool.RunBatch(ctx, sched.TierInteractive, costs, fns)
}

// RunCached executes one simulation through the engine's pool and
// cache at the interactive tier (ahead of queued campaign cells),
// blocking until the result is available or ctx dies, and returns the
// run's content address alongside it. The outcome reports how the
// request was served: Miss (simulated now), Hit (already cached) or
// Shared (joined an identical in-flight simulation). The spec must be
// hashable (see RunSpec.Canonical).
//
// Cancelling ctx abandons only this caller: an identical in-flight
// simulation other callers are waiting on keeps running for them, and
// the cache entry is never poisoned — only when every waiter has
// cancelled is the simulation itself aborted (within about a
// millisecond, mid-pipeline).
func (e *Engine) RunCached(ctx context.Context, spec RunSpec) (RunResult, cache.Outcome, string, error) {
	return e.runCached(ctx, sched.TierInteractive, spec)
}

// RunCellCached is RunCached at the campaign tier: queued interactive
// runs still go first. It is the execution path for coordinator-
// dispatched sweep cells (internal/fabric): a worker serving a fleet's
// campaign shards must not let them preempt its own /v1/run traffic.
func (e *Engine) RunCellCached(ctx context.Context, spec RunSpec) (RunResult, cache.Outcome, string, error) {
	return e.runCached(ctx, sched.TierCampaign, spec)
}

func (e *Engine) runCached(ctx context.Context, tier sched.Tier, spec RunSpec) (RunResult, cache.Outcome, string, error) {
	// Canonicalize once up front: the hash needs it anyway, and the
	// canonical spec rides into the cache value so a fresh result can
	// be persisted with its provenance (see storedRecord).
	canon, err := spec.Canonical()
	if err != nil {
		return RunResult{}, cache.Miss, "", err
	}
	key, err := canon.Hash()
	if err != nil {
		return RunResult{}, cache.Miss, "", err
	}
	v, outcome, err := e.cache.Do(ctx, key, func(cctx context.Context) (any, error) {
		done := make(chan struct{})
		var res RunResult
		var rerr error
		backend := specBackendName(spec)
		e.noteOutstanding(backend, 1)
		e.pool.SubmitCtx(cctx, tier, runWeight(spec), func(tctx context.Context) {
			defer close(done)
			defer e.noteOutstanding(backend, -1)
			// A panicking simulation must become this request's error,
			// not an unrecovered panic on a pool worker (which would
			// kill the process) — and must not let a zero-value result
			// reach the cache.
			defer func() {
				if p := recover(); p != nil {
					rerr = fmt.Errorf("ltp: simulation panicked: %v", p)
				}
			}()
			// Cancelled while queued: never start the simulation.
			if err := tctx.Err(); err != nil {
				rerr = err
				return
			}
			start := time.Now()
			// A sampled cell fans its interval simulations back onto
			// this pool (see poolExecutor).
			res, rerr = RunContext(withExecutor(tctx, poolExecutor{e.pool}), spec)
			// Each backend feeds its own EWMA: near-free model
			// estimates must not wreck the Retry-After hint for real
			// simulations, and vice versa.
			if rerr == nil {
				e.noteRunSeconds(backend, time.Since(start).Seconds())
			}
		})
		<-done
		if rerr != nil {
			return nil, rerr
		}
		return cachedCell{spec: canon, res: res}, nil
	})
	if err != nil {
		return RunResult{}, outcome, key, err
	}
	return v.(cachedCell).res, outcome, key, nil
}

// ErrJobCanceled is the cause a Job's Wait reports after Cancel (when
// no more specific cause was given).
var ErrJobCanceled = errors.New("ltp: job canceled")

// isCancellation reports whether err stems from a context dying rather
// than a simulation failing.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrJobCanceled)
}

// CellResult is one resolved cell replicate of a sweep job, delivered
// on Job.Cells as it completes (completion order, not enumeration
// order).
type CellResult struct {
	// Index is the run's enumeration index in the sweep's cross-
	// product (row-major, last axis fastest).
	Index int `json:"index"`
	// Coords is the run's point name per axis, in axis order.
	Coords []string `json:"coords"`
	// Cell is the index of the run's cell in the final
	// SweepResult.Cells; Replicate its replicate slot within it.
	Cell int `json:"cell"`
	// Replicate is the run's replicate index within its cell.
	Replicate int `json:"replicate"`
	// Hash is the run's content address ("" when hashing failed).
	Hash string `json:"hash,omitempty"`
	// Backend is the execution backend the run used ("cycle",
	// "model").
	Backend string `json:"backend,omitempty"`
	// Phase distinguishes a triage sweep's phases: "triage" for the
	// model pre-pass, "detail" for the cycle-accurate re-runs of the
	// selected cells. Empty for plain sweeps.
	Phase string `json:"phase,omitempty"`
	// Outcome is how the run was served: "miss" (simulated), "hit"
	// (in-memory cache), "shared" (joined an in-flight identical
	// simulation), "store" (loaded from the persistent result store),
	// or "cached" (skipped entirely — its hash was in the sweep's
	// SinceSnapshot manifest; Result is zero).
	Outcome string `json:"outcome"`
	// Result is the simulation outcome (zero when Err is set).
	Result RunResult `json:"result"`
	// Error is Err's message — the run's failure, marshalled so a
	// streaming consumer can tell a failed cell from a real zero.
	Error string `json:"error,omitempty"`
	// Err is the run's failure, nil on success.
	Err error `json:"-"`
}

// Progress is a point-in-time view of a running job.
type Progress struct {
	// TotalRuns is the job's enumerated simulation count.
	TotalRuns int `json:"total_runs"`
	// DoneRuns counts the runs resolved so far (success or failure).
	DoneRuns int `json:"done_runs"`
	// CanceledRuns counts runs abandoned before resolving — queued
	// cells a cancellation kept from simulating, in-flight cells
	// aborted mid-pipeline, and a triage job's later-phase runs that a
	// cancellation or an earlier-phase failure kept from launching.
	CanceledRuns int `json:"canceled_runs"`
	// CacheHits counts resolved runs reusing a stored result.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts resolved runs that actually simulated.
	CacheMisses int64 `json:"cache_misses"`
	// CacheShared counts resolved runs that joined an in-flight
	// identical simulation (possibly another job's).
	CacheShared int64 `json:"cache_shared"`
	// StoreHits counts resolved runs loaded from the persistent result
	// store (simulated by an earlier process, not this one).
	StoreHits int64 `json:"store_hits"`
	// SnapshotSkipped counts runs never executed because their content
	// address was in the sweep's SinceSnapshot manifest (streamed as
	// outcome "cached"; included in DoneRuns).
	SnapshotSkipped int64 `json:"snapshot_skipped"`
	// Finished reports whether the job has completed (check Wait for
	// the verdict).
	Finished bool `json:"finished"`
}

// Job is the handle for an asynchronously submitted sweep campaign.
// Cells streams per-cell results as they resolve; Progress may be
// polled at any time; Done closes when the aggregated result (or
// error) is ready; Cancel aborts the job's remaining work.
type Job struct {
	spec  SweepSpec // canonical
	hash  string
	total int

	done      atomic.Int64
	canceled  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	shared    atomic.Int64
	storeHits atomic.Int64
	skipped   atomic.Int64

	// Cell results accumulate in an append-only log (no up-front
	// O(TotalRuns) buffer); Cells lazily starts one forwarder that
	// replays the log onto the returned channel.
	cellMu     sync.Mutex
	cellLog    []CellResult
	cellNotify chan struct{} // closed and replaced on every append
	cellsDone  bool
	cellsOnce  sync.Once
	cellsCh    chan CellResult

	cancelFn context.CancelCauseFunc

	doneCh chan struct{}
	result *SweepResult
	err    error
}

// Spec returns the canonical sweep spec the job executes.
func (j *Job) Spec() SweepSpec { return j.spec }

// Hash returns the sweep's content address (SweepSpec.Hash).
func (j *Job) Hash() string { return j.hash }

// TotalRuns returns the job's enumerated simulation count.
func (j *Job) TotalRuns() int { return j.total }

// Done returns a channel closed when the job finishes (result ready,
// failed, or cancellation fully drained).
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Cells returns the job's result stream: one CellResult per resolved
// run, in completion order, closed when no more will arrive. Cells
// abandoned by cancellation are not delivered (Progress counts them).
// The job itself only appends to an internal log, so a slow (or
// absent) consumer never blocks the campaign; repeated calls return
// the same channel, which replays from the first cell. The single
// logical consumer should drain the channel to completion — walking
// away mid-stream strands the forwarder goroutine until process exit.
func (j *Job) Cells() <-chan CellResult {
	j.cellsOnce.Do(func() {
		ch := make(chan CellResult, 64)
		j.cellsCh = ch
		go func() {
			next := 0
			for {
				j.cellMu.Lock()
				cells := j.cellLog[next:]
				notify := j.cellNotify
				done := j.cellsDone
				j.cellMu.Unlock()
				for _, c := range cells {
					ch <- c
				}
				next += len(cells)
				if len(cells) == 0 && done {
					// Every cell has been delivered; drop the log so a
					// long-retained finished Job does not pin thousands
					// of full RunResults.
					j.cellMu.Lock()
					j.cellLog = nil
					j.cellMu.Unlock()
					close(ch)
					return
				}
				if len(cells) == 0 {
					<-notify
				}
			}
		}()
	})
	return j.cellsCh
}

// appendCell records one resolved cell and wakes the forwarder.
func (j *Job) appendCell(c CellResult) {
	j.cellMu.Lock()
	j.cellLog = append(j.cellLog, c)
	close(j.cellNotify)
	j.cellNotify = make(chan struct{})
	j.cellMu.Unlock()
}

// finishCells marks the log complete (no appends can follow) and
// wakes the forwarder so it can close the stream.
func (j *Job) finishCells() {
	j.cellMu.Lock()
	j.cellsDone = true
	close(j.cellNotify)
	j.cellNotify = make(chan struct{})
	j.cellMu.Unlock()
}

// Cancel aborts the job: queued cells never simulate, in-flight cells
// abort mid-pipeline within about a millisecond (unless another job's
// waiter shares them — shared cells complete for the survivors), and
// Wait returns ErrJobCanceled. Cancel after completion is a no-op.
func (j *Job) Cancel() { j.cancelFn(ErrJobCanceled) }

// Canceled reports whether the job ended cancelled.
func (j *Job) Canceled() bool {
	select {
	case <-j.doneCh:
		return isCancellation(j.err)
	default:
		return false
	}
}

// Progress returns a point-in-time snapshot of the job.
func (j *Job) Progress() Progress {
	p := Progress{
		TotalRuns:       j.total,
		DoneRuns:        int(j.done.Load()),
		CanceledRuns:    int(j.canceled.Load()),
		CacheHits:       j.hits.Load(),
		CacheMisses:     j.misses.Load(),
		CacheShared:     j.shared.Load(),
		StoreHits:       j.storeHits.Load(),
		SnapshotSkipped: j.skipped.Load(),
	}
	select {
	case <-j.doneCh:
		p.Finished = true
	default:
	}
	return p
}

// Wait blocks until the job finishes and returns its aggregated
// result, or the first cell failure, or the cancellation cause.
func (j *Job) Wait() (*SweepResult, error) {
	<-j.doneCh
	return j.result, j.err
}

// Submit validates and canonicalizes the sweep, arranges every
// enumerated run to execute through the engine's cache and pool at the
// campaign tier, and returns immediately with a job handle. Identical
// cells — within the sweep, across concurrent jobs, or already
// computed by an earlier request — are simulated exactly once and
// shared.
//
// ctx bounds the whole job: cancelling it (or calling Job.Cancel)
// stops remaining cells within one cell boundary — queued cells are
// never simulated, in-flight ones abort mid-pipeline — after which the
// job finishes with the cancellation cause.
func (e *Engine) Submit(ctx context.Context, spec SweepSpec) (*Job, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := canon.Hash()
	if err != nil {
		return nil, err
	}
	runs := canon.runs()
	total := len(runs)
	if canon.Triage != nil {
		// A triage job's detailed phase re-runs the TopK cells'
		// replicates on top of the model pre-pass.
		total += canon.Triage.TopK * canon.Replicates()
	}
	jctx, cancel := context.WithCancelCause(ctx)
	job := &Job{
		spec:       canon,
		hash:       hash,
		total:      total,
		cellNotify: make(chan struct{}),
		cancelFn:   cancel,
		doneCh:     make(chan struct{}),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel(nil)
		return nil, fmt.Errorf("ltp: engine is closed")
	}
	e.jobs.Add(1)
	e.mu.Unlock()
	go e.runJob(jctx, job, runs)
	return job, nil
}

// Phase values of CellResult.Phase in a triage sweep.
const (
	// PhaseTriage marks a model-backend pre-pass run.
	PhaseTriage = "triage"
	// PhaseDetail marks a cycle-accurate re-run of a selected cell.
	PhaseDetail = "detail"
)

// runJob is a submitted job's coordinator goroutine.
func (e *Engine) runJob(jctx context.Context, job *Job, runs []sweepRun) {
	defer e.jobs.Done()
	defer close(job.doneCh)
	defer job.cancelFn(nil) // release the job context's resources
	defer job.finishCells() // no phase appends after this point

	if job.spec.Triage != nil {
		e.runTriageJob(jctx, job, runs)
		return
	}
	runs = skipSnapshotRuns(job, runs)
	results, errs := e.runPhase(jctx, job, runs, "")
	if jctx.Err() != nil {
		job.err = cancelErr(jctx)
		return
	}
	if err := firstRunError(runs, errs); err != nil {
		job.err = err
		return
	}
	job.result = aggregateSweep(job.spec, runs, results)
}

// runTriageJob executes a two-phase fidelity triage: a model-backend
// pre-pass over every enumerated run, a ranking of the cells by their
// model-estimated mean CPI, and a cycle-accurate re-run of the TopK
// best cells. Both phases stream through the same cell log with
// distinct Phase tags, and the detailed runs hash (and therefore
// cache) exactly like directly submitted cycle-backend cells.
func (e *Engine) runTriageJob(jctx context.Context, job *Job, runs []sweepRun) {
	// Phase 1: estimate every cell on the model backend.
	model := make([]sweepRun, len(runs))
	for i, r := range runs {
		r.spec.Backend = BackendModel
		model[i] = r
	}
	// Whatever ends this job early — cancellation here, or a failed
	// cell below — the runs the later phase now never launches are
	// charged as abandoned, so Progress always adds up to TotalRuns.
	defer job.abandonRemaining()

	mres, merrs := e.runPhase(jctx, job, model, PhaseTriage)
	if jctx.Err() != nil {
		job.err = cancelErr(jctx)
		return
	}
	if err := firstRunError(model, merrs); err != nil {
		job.err = err
		return
	}
	estimates := aggregateSweep(job.spec, model, mres)

	// Rank cells by ascending model-estimated mean CPI (best
	// performance first); ties keep sweep order.
	order := make([]int, len(estimates.Cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return estimates.Cells[order[a]].CPI.Mean < estimates.Cells[order[b]].CPI.Mean
	})
	selected := make(map[int]bool, job.spec.Triage.TopK)
	for _, ci := range order[:job.spec.Triage.TopK] {
		selected[ci] = true
	}

	// Phase 2: re-run the selected cells' replicates at their own
	// detailed fidelity (their specs are untouched — the triage
	// validation pinned them to the cycle or sampled backend, so these
	// hashes equal a direct submission's).
	var detail []sweepRun
	for _, r := range runs {
		if selected[r.cell] {
			detail = append(detail, r)
		}
	}
	dres, derrs := e.runPhase(jctx, job, detail, PhaseDetail)
	if jctx.Err() != nil {
		job.err = cancelErr(jctx)
		return
	}
	if err := firstRunError(detail, derrs); err != nil {
		job.err = err
		return
	}
	detailed := aggregateSweep(job.spec, detail, dres)
	out := &SweepResult{
		Axes:   estimates.Axes,
		Cells:  estimates.Cells,
		Triage: &TriageResult{TopK: job.spec.Triage.TopK},
	}
	for _, c := range detailed.Cells {
		if c.Replicates > 0 {
			out.Triage.Detailed = append(out.Triage.Detailed, c)
		}
	}
	job.result = out
}

// phaseUnit is one launch unit of a phase: a single run, or a group of
// model-backend runs sharing one functional stream (equal
// modelBatchKey) that executes as one batched pool task through
// runBatchCached.
type phaseUnit struct {
	idx    []int     // positions in the phase's runs slice
	canons []RunSpec // parallel to idx; non-nil marks a batch unit
}

// phaseUnits partitions a phase's runs: model cells that share a
// functional stream and warm/measured budgets coalesce into batch
// units (the stream is emulated once for the whole group), everything
// else launches alone. Triage phase 1 rewrites every run to the model
// backend, so triage sweeps batch wholesale without special-casing.
func phaseUnits(runs []sweepRun) []phaseUnit {
	units := make([]phaseUnit, 0, len(runs))
	groups := make(map[string]*phaseUnit)
	var order []string
	for i := range runs {
		if canon, err := runs[i].spec.Canonical(); err == nil {
			if key, ok := modelBatchKey(canon); ok {
				g := groups[key]
				if g == nil {
					g = &phaseUnit{}
					groups[key] = g
					order = append(order, key)
				}
				g.idx = append(g.idx, i)
				g.canons = append(g.canons, canon)
				continue
			}
		}
		units = append(units, phaseUnit{idx: []int{i}})
	}
	for _, k := range order {
		g := groups[k]
		if len(g.idx) == 1 {
			// A group of one gains nothing from the batch path; keep
			// the single-cell machinery.
			units = append(units, phaseUnit{idx: g.idx})
			continue
		}
		units = append(units, *g)
	}
	return units
}

// recordPhaseCell folds one resolved cell into the job's counters and
// cell stream — shared by the single and batched execution paths so
// their bookkeeping cannot drift.
func (j *Job) recordPhaseCell(r sweepRun, res RunResult, outcome cache.Outcome, hash string, err error, phase string) {
	if err != nil && isCancellation(err) {
		j.canceled.Add(1)
		return
	}
	switch outcome {
	case cache.Hit:
		j.hits.Add(1)
	case cache.Shared:
		j.shared.Add(1)
	case cache.StoreHit:
		j.storeHits.Add(1)
	default:
		j.misses.Add(1)
	}
	j.done.Add(1)
	cell := CellResult{
		Index:     r.idx,
		Coords:    r.coords,
		Cell:      r.cell,
		Replicate: r.rep,
		Hash:      hash,
		Backend:   specBackendName(r.spec),
		Phase:     phase,
		Outcome:   outcome.String(),
		Result:    res,
		Err:       err,
	}
	if err != nil {
		cell.Error = err.Error()
	}
	j.appendCell(cell)
}

// runPhase executes one batch of enumerated runs through the engine's
// cache and pool at the campaign tier, streaming each resolved cell
// with the given phase tag, and returns per-run results and errors.
// Model cells sharing a stream execute batched (see phaseUnits).
func (e *Engine) runPhase(jctx context.Context, job *Job, runs []sweepRun, phase string) ([]RunResult, []error) {
	results := make([]RunResult, len(runs))
	errs := make([]error, len(runs))
	units := phaseUnits(runs)
	// Bound this phase's outstanding runCached calls: without it a
	// large admitted sweep would park one goroutine per run
	// (potentially hundreds of thousands of stacks) before pool
	// backpressure applies. 2× the pool keeps every worker fed while
	// cells resolve.
	sem := make(chan struct{}, 2*e.pool.Workers())
	var wg sync.WaitGroup
launch:
	for u := range units {
		select {
		case <-jctx.Done():
			// Cancelled: everything not yet launched is abandoned
			// without ever touching the pool or the cache.
			for _, unit := range units[u:] {
				job.canceled.Add(int64(len(unit.idx)))
				for _, k := range unit.idx {
					errs[k] = cancelErr(jctx)
				}
			}
			break launch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(unit phaseUnit) {
			defer wg.Done()
			defer func() { <-sem }()
			if unit.canons == nil {
				i := unit.idx[0]
				res, outcome, hash, err := e.runCached(jctx, sched.TierCampaign, runs[i].spec)
				results[i], errs[i] = res, err
				job.recordPhaseCell(runs[i], res, outcome, hash, err, phase)
				return
			}
			rres, routs, rhashes, rerrs := e.runBatchCached(jctx, sched.TierCampaign, unit.canons)
			for j, i := range unit.idx {
				results[i], errs[i] = rres[j], rerrs[j]
				job.recordPhaseCell(runs[i], rres[j], routs[j], rhashes[j], rerrs[j], phase)
			}
		}(units[u])
	}
	wg.Wait()
	return results, errs
}

// runBatchCached resolves a group of canonical model-backend specs
// (equal modelBatchKey) through the cache's batch path: lanes already
// cached (memory or backing) or in flight are served per-key exactly
// as runCached would serve them, and the remainder is computed by ONE
// pool task driving runModelBatch — one shared functional stream, one
// warm pass, per-config timing lanes. Each computed lane is stored
// under its own content address, so batched and single-cell results
// are fully interchangeable in the cache.
func (e *Engine) runBatchCached(ctx context.Context, tier sched.Tier, canons []RunSpec) ([]RunResult, []cache.Outcome, []string, []error) {
	n := len(canons)
	results := make([]RunResult, n)
	outcomes := make([]cache.Outcome, n)
	errs := make([]error, n)
	keys := make([]string, n)
	sub := make([]int, 0, n) // lanes with a valid content address
	for i := range canons {
		key, err := canons[i].Hash()
		if err != nil {
			// Cannot happen for a spec Canonical() accepted, but a
			// surprise degrades one lane, not the group.
			errs[i] = err
			continue
		}
		keys[i] = key
		sub = append(sub, i)
	}
	if len(sub) == 0 {
		return results, outcomes, keys, errs
	}
	subKeys := make([]string, len(sub))
	for j, i := range sub {
		subKeys[j] = keys[i]
	}
	vals, outs, cerrs := e.cache.DoBatch(ctx, subKeys, func(bctx context.Context, miss []int) ([]any, []error) {
		specs := make([]RunSpec, len(miss))
		for j, mj := range miss {
			specs[j] = canons[sub[mj]]
		}
		mvals := make([]any, len(miss))
		merrs := make([]error, len(miss))
		done := make(chan struct{})
		var weight float64
		for i := range specs {
			weight += runWeight(specs[i])
		}
		e.noteOutstanding(BackendModel, len(specs))
		e.pool.SubmitCtx(bctx, tier, weight, func(tctx context.Context) {
			defer close(done)
			defer e.noteOutstanding(BackendModel, -len(specs))
			// A panicking batch must become per-lane errors, not an
			// unrecovered panic on a pool worker.
			defer func() {
				if p := recover(); p != nil {
					err := fmt.Errorf("ltp: simulation panicked: %v", p)
					for j := range merrs {
						if mvals[j] == nil && merrs[j] == nil {
							merrs[j] = err
						}
					}
				}
			}()
			// Cancelled while queued: never start the batch.
			if err := tctx.Err(); err != nil {
				for j := range merrs {
					merrs[j] = err
				}
				return
			}
			start := time.Now()
			rres, rerrs := runModelBatch(tctx, specs)
			// Amortized per-lane seconds feed the model backend's EWMA,
			// mirroring one noteRunSeconds per single-cell run.
			perLane := time.Since(start).Seconds() / float64(len(specs))
			for j := range specs {
				if rerrs[j] != nil {
					merrs[j] = rerrs[j]
					continue
				}
				mvals[j] = cachedCell{spec: specs[j], res: rres[j]}
				e.noteRunSeconds(BackendModel, perLane)
			}
		})
		<-done
		return mvals, merrs
	})
	for j, i := range sub {
		outcomes[i] = outs[j]
		if cerrs[j] != nil {
			errs[i] = cerrs[j]
			continue
		}
		results[i] = vals[j].(cachedCell).res
	}
	return results, outcomes, keys, errs
}

// skipSnapshotRuns settles every run whose content address is in the
// sweep's SinceSnapshot set — streamed immediately as an Outcome
// "cached" cell with a zero Result, counted as done and
// snapshot-skipped — and returns the remainder for execution. The
// snapshot set was normalized by SweepSpec.Canonical to addresses the
// sweep actually enumerates, so this is a pure set lookup per run.
func skipSnapshotRuns(job *Job, runs []sweepRun) []sweepRun {
	if len(job.spec.SinceSnapshot) == 0 {
		return runs
	}
	snap := make(map[string]bool, len(job.spec.SinceSnapshot))
	for _, h := range job.spec.SinceSnapshot {
		snap[h] = true
	}
	kept := make([]sweepRun, 0, len(runs))
	for _, r := range runs {
		h, err := r.spec.Hash()
		if err != nil || !snap[h] {
			// The hash cannot actually fail here — Canonical hashed every
			// enumerated run when it normalized the snapshot — but an
			// unexpected error degrades to executing the run, never to
			// dropping it.
			kept = append(kept, r)
			continue
		}
		job.done.Add(1)
		job.skipped.Add(1)
		job.appendCell(CellResult{
			Index:     r.idx,
			Coords:    r.coords,
			Cell:      r.cell,
			Replicate: r.rep,
			Hash:      h,
			Backend:   specBackendName(r.spec),
			Outcome:   "cached",
		})
	}
	return kept
}

// abandonRemaining charges every run the job will now never execute —
// a triage job cancelled, or failed, before its detailed phase
// launched — to the canceled counter, so Progress always adds up to
// TotalRuns.
func (j *Job) abandonRemaining() {
	left := int64(j.total) - j.done.Load() - j.canceled.Load()
	if left > 0 {
		j.canceled.Add(left)
	}
}

// firstRunError returns the first cell failure, labeled with its
// coordinates.
func firstRunError(runs []sweepRun, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ltp: sweep cell %v: %w", runs[i].coords, err)
		}
	}
	return nil
}

// --- v1 matrix shims ---

// MatrixProgress is a point-in-time view of a running matrix campaign
// (the v1 progress shape; CanceledRuns extends it for v2 cancellation).
type MatrixProgress struct {
	// TotalRuns is the campaign's replicate count
	// (scenarios × configs × seeds).
	TotalRuns int `json:"total_runs"`
	// DoneRuns counts the replicates resolved so far.
	DoneRuns int `json:"done_runs"`
	// CanceledRuns counts replicates abandoned by cancellation.
	CanceledRuns int `json:"canceled_runs"`
	// CacheHits counts resolved runs reusing a stored result.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts resolved runs that actually simulated.
	CacheMisses int64 `json:"cache_misses"`
	// CacheShared counts resolved runs that joined an in-flight
	// identical simulation (possibly another campaign's).
	CacheShared int64 `json:"cache_shared"`
	// Finished reports whether the campaign has completed (check the
	// job's Wait/Err for the verdict).
	Finished bool `json:"finished"`
}

// MatrixJob is the v1 handle for an asynchronously submitted matrix
// campaign: a thin wrapper over the v2 Job executing the equivalent
// NewMatrixSweep. Job exposes the underlying handle (cancellation,
// cell streaming).
type MatrixJob struct {
	job  *Job
	spec MatrixSpec // canonical
	hash string     // matrix content address ("mx1:...")

	convertOnce sync.Once
	result      *MatrixResult
	err         error
}

// Spec returns the canonical campaign spec the job executes.
func (j *MatrixJob) Spec() MatrixSpec { return j.spec }

// Hash returns the campaign's content address (MatrixSpec.Hash).
func (j *MatrixJob) Hash() string { return j.hash }

// Job returns the underlying v2 sweep job (cancel it, stream its
// cells).
func (j *MatrixJob) Job() *Job { return j.job }

// TotalRuns returns the campaign's replicate count.
func (j *MatrixJob) TotalRuns() int { return j.job.TotalRuns() }

// Done returns a channel closed when the campaign finishes.
func (j *MatrixJob) Done() <-chan struct{} { return j.job.Done() }

// Progress returns a point-in-time snapshot of the campaign.
func (j *MatrixJob) Progress() MatrixProgress {
	p := j.job.Progress()
	return MatrixProgress{
		TotalRuns:    p.TotalRuns,
		DoneRuns:     p.DoneRuns,
		CanceledRuns: p.CanceledRuns,
		CacheHits:    p.CacheHits,
		CacheMisses:  p.CacheMisses,
		CacheShared:  p.CacheShared,
		Finished:     p.Finished,
	}
}

// Wait blocks until the campaign finishes and returns its result in
// the matrix shape.
func (j *MatrixJob) Wait() (*MatrixResult, error) {
	sr, err := j.job.Wait()
	j.convertOnce.Do(func() {
		if err != nil {
			j.err = err
			return
		}
		j.result = matrixResultFromSweep(j.spec, sr)
	})
	return j.result, j.err
}

// SubmitMatrix submits the matrix campaign as its equivalent sweep
// (NewMatrixSweep) under a background context and returns the v1
// handle.
//
// Deprecated: use Engine.Submit with NewMatrixSweep, which threads a
// context and streams per-cell results.
func (e *Engine) SubmitMatrix(spec MatrixSpec) (*MatrixJob, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := canon.Hash()
	if err != nil {
		return nil, err
	}
	sweep, err := NewMatrixSweep(canon)
	if err != nil {
		return nil, err
	}
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		return nil, err
	}
	return &MatrixJob{job: job, spec: canon, hash: hash}, nil
}

var (
	defaultEngineMu sync.Mutex
	defaultEngine   *Engine
)

// DefaultEngine returns the lazily created process-wide engine
// (NumCPU workers, cache.DefaultEntries results), recreating it if
// Shutdown retired an earlier one. The campaign service binary sizes
// its own Engine instead.
func DefaultEngine() *Engine {
	defaultEngineMu.Lock()
	defer defaultEngineMu.Unlock()
	if defaultEngine == nil {
		e, err := NewEngine(EngineConfig{})
		if err != nil {
			// Unreachable: only a StorePath can fail NewEngine, and the
			// default engine has none.
			panic(err)
		}
		defaultEngine = e
	}
	return defaultEngine
}

// Shutdown retires the process-wide DefaultEngine: it waits — bounded
// by ctx — for its in-flight jobs and queued runs, then stops its
// worker goroutines so they (and the cache they feed) drain cleanly on
// process exit. It is a cheap no-op when DefaultEngine was never used.
// Call it from main (typically deferred with a short timeout); a later
// DefaultEngine call starts a fresh engine.
func Shutdown(ctx context.Context) error {
	defaultEngineMu.Lock()
	e := defaultEngine
	defaultEngine = nil
	defaultEngineMu.Unlock()
	if e == nil {
		return nil
	}
	done := make(chan struct{})
	go func() {
		e.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("ltp: shutdown: %w", ctx.Err())
	}
}
