package ltp

// The campaign engine: the long-lived execution layer behind the
// campaign service (cmd/ltpserved, internal/server). One sched.Pool
// serves interactive single-run requests and batch matrix campaigns
// with LPT ordering under a single parallelism cap, and one
// content-addressed internal/cache deduplicates identical
// scenario×config×seed cells across overlapping requests: each
// distinct cell simulates at most once process-wide.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ltp/internal/cache"
	"ltp/internal/sched"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Parallelism is the worker-pool size, the hard cap on concurrent
	// simulations across every request (0 = NumCPU).
	Parallelism int
	// CacheEntries bounds the result cache's LRU
	// (0 = cache.DefaultEntries).
	CacheEntries int
}

// Engine executes runs and matrix campaigns on one shared LPT worker
// pool with a content-addressed result cache. It is safe for
// concurrent use; create one per process (or use DefaultEngine) so the
// parallelism cap and the cell deduplication are global.
type Engine struct {
	pool  *sched.Pool
	cache *cache.Cache
	// campaigns tracks in-flight SubmitMatrix coordinators so Close
	// can wait for them before closing the pool; mu/closed gate new
	// campaigns against a concurrent Close (WaitGroup Add-after-Wait
	// is undefined otherwise).
	mu        sync.Mutex
	closed    bool
	campaigns sync.WaitGroup
}

// NewEngine starts an engine; Close releases its workers.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{
		pool:  sched.NewPool(cfg.Parallelism),
		cache: cache.New(cfg.CacheEntries),
	}
}

// Close waits for every in-flight campaign and queued run, then stops
// the pool. SubmitMatrix after (or racing) Close returns an error;
// a straggler RunCached degrades to inline execution (sched.Pool's
// closed-Submit contract) rather than failing.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.campaigns.Wait()
	e.pool.Close()
}

// Parallelism returns the engine's concurrent-simulation cap.
func (e *Engine) Parallelism() int { return e.pool.Workers() }

// QueuedRuns returns the number of submitted simulations not yet
// started (the service's backpressure signal).
func (e *Engine) QueuedRuns() int { return e.pool.Queued() }

// RunningRuns returns the number of simulations currently executing.
func (e *Engine) RunningRuns() int { return e.pool.Running() }

// CacheStats returns a snapshot of the result-cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.cache.Stats() }

// RunCached executes one simulation through the engine's pool and
// cache, blocking until the result is available, and returns the run's
// content address alongside it. The outcome reports how the request
// was served: Miss (simulated now), Hit (already cached) or Shared
// (joined an identical in-flight simulation). The spec must be
// hashable (see RunSpec.Canonical).
func (e *Engine) RunCached(spec RunSpec) (RunResult, cache.Outcome, string, error) {
	key, err := spec.Hash()
	if err != nil {
		return RunResult{}, cache.Miss, "", err
	}
	v, outcome, err := e.cache.Do(key, func() (any, error) {
		done := make(chan struct{})
		var res RunResult
		var rerr error
		e.pool.Submit(runWeight(spec), func() {
			defer close(done)
			// A panicking simulation must become this request's error,
			// not an unrecovered panic on a pool worker (which would
			// kill the process) — and must not let a zero-value result
			// reach the cache.
			defer func() {
				if p := recover(); p != nil {
					rerr = fmt.Errorf("ltp: simulation panicked: %v", p)
				}
			}()
			res, rerr = Run(spec)
		})
		<-done
		return res, rerr
	})
	if err != nil {
		return RunResult{}, outcome, key, err
	}
	return v.(RunResult), outcome, key, nil
}

// MatrixProgress is a point-in-time view of a running campaign.
type MatrixProgress struct {
	// TotalRuns is the campaign's replicate count
	// (scenarios × configs × seeds).
	TotalRuns int `json:"total_runs"`
	// DoneRuns counts the replicates resolved so far.
	DoneRuns int `json:"done_runs"`
	// CacheHits counts resolved runs reusing a stored result.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts resolved runs that actually simulated.
	CacheMisses int64 `json:"cache_misses"`
	// CacheShared counts resolved runs that joined an in-flight
	// identical simulation (possibly another campaign's).
	CacheShared int64 `json:"cache_shared"`
	// Finished reports whether the campaign has completed (check the
	// job's Wait/Err for the verdict).
	Finished bool `json:"finished"`
}

// MatrixJob is the handle for an asynchronously submitted campaign.
// Progress may be polled at any time; Done closes when the result (or
// error) is ready.
type MatrixJob struct {
	spec  MatrixSpec // canonical
	hash  string
	total int

	done   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
	shared atomic.Int64

	doneCh chan struct{}
	result *MatrixResult
	err    error
}

// Spec returns the canonical campaign spec the job executes.
func (j *MatrixJob) Spec() MatrixSpec { return j.spec }

// Hash returns the campaign's content address (MatrixSpec.Hash).
func (j *MatrixJob) Hash() string { return j.hash }

// TotalRuns returns the campaign's replicate count.
func (j *MatrixJob) TotalRuns() int { return j.total }

// Done returns a channel closed when the campaign finishes.
func (j *MatrixJob) Done() <-chan struct{} { return j.doneCh }

// Progress returns a point-in-time snapshot of the campaign.
func (j *MatrixJob) Progress() MatrixProgress {
	p := MatrixProgress{
		TotalRuns:   j.total,
		DoneRuns:    int(j.done.Load()),
		CacheHits:   j.hits.Load(),
		CacheMisses: j.misses.Load(),
		CacheShared: j.shared.Load(),
	}
	select {
	case <-j.doneCh:
		p.Finished = true
	default:
	}
	return p
}

// Wait blocks until the campaign finishes and returns its result.
func (j *MatrixJob) Wait() (*MatrixResult, error) {
	<-j.doneCh
	return j.result, j.err
}

// SubmitMatrix validates and canonicalizes the campaign, submits every
// cell replicate through the engine's cache and pool, and returns
// immediately with a job handle. Identical cells — within the
// campaign, across concurrent campaigns, or already computed by an
// earlier request — are simulated exactly once and shared.
func (e *Engine) SubmitMatrix(spec MatrixSpec) (*MatrixJob, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := canon.Hash()
	if err != nil {
		return nil, err
	}
	runs := matrixRuns(canon)
	job := &MatrixJob{
		spec:   canon,
		hash:   hash,
		total:  len(runs),
		doneCh: make(chan struct{}),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("ltp: engine is closed")
	}
	e.campaigns.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.campaigns.Done()
		results := make([]RunResult, len(runs))
		errs := make([]error, len(runs))
		// Bound this campaign's outstanding RunCached calls: without
		// it a large admitted campaign would park one goroutine per
		// replicate (potentially hundreds of thousands of stacks)
		// before pool backpressure applies. 2× the pool keeps every
		// worker fed while cells resolve.
		sem := make(chan struct{}, 2*e.pool.Workers())
		var wg sync.WaitGroup
		for i := range runs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				res, outcome, _, err := e.RunCached(runs[i].spec)
				results[i], errs[i] = res, err
				switch outcome {
				case cache.Hit:
					job.hits.Add(1)
				case cache.Shared:
					job.shared.Add(1)
				default:
					job.misses.Add(1)
				}
				job.done.Add(1)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				r := runs[i]
				job.err = fmt.Errorf("ltp: matrix cell %s/%s seed %d: %w",
					r.spec.Scenario, canon.Configs[r.cell%len(canon.Configs)].Name, r.spec.Seed, err)
				close(job.doneCh)
				return
			}
		}
		job.result = aggregateMatrix(canon, runs, results)
		close(job.doneCh)
	}()
	return job, nil
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily created process-wide engine
// (NumCPU workers, cache.DefaultEntries results). The campaign service
// binary sizes its own Engine instead.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = NewEngine(EngineConfig{})
	})
	return defaultEngine
}
