package ltp_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/workload"
)

// TestHashStableAcrossFieldOrder decodes the same request from JSON
// bodies with reordered fields — the shape an HTTP client controls —
// and requires identical hashes.
func TestHashStableAcrossFieldOrder(t *testing.T) {
	a := `{"Scenario":"hashjoin","Seed":7,"Scale":0.5,"MaxInsts":50000,"UseLTP":true}`
	b := `{"UseLTP":true,"MaxInsts":50000,"Scale":0.5,"Seed":7,"Scenario":"hashjoin"}`
	var sa, sb ltp.RunSpec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("field order perturbed the hash:\n%s\n%s", ha, hb)
	}
	if !strings.HasPrefix(ha, "rs3:") {
		t.Fatalf("hash %q missing version prefix", ha)
	}
}

// TestHashNormalizesDefaults holds the canonicalization contract:
// zero/nil defaults and their explicit spellings hash identically, and
// ignored fields cannot perturb the hash.
func TestHashNormalizesDefaults(t *testing.T) {
	hash := func(s ltp.RunSpec) string {
		t.Helper()
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	base := ltp.RunSpec{Workload: "indirect", MaxInsts: 50_000}

	// nil Pipeline == explicit DefaultConfig.
	pcfg := pipeline.DefaultConfig()
	if got, want := hash(ltp.RunSpec{Workload: "indirect", MaxInsts: 50_000, Pipeline: &pcfg}), hash(base); got != want {
		t.Errorf("nil vs default Pipeline hash differs")
	}

	// Scale 0 == Scale 1.0.
	if got, want := hash(ltp.RunSpec{Workload: "indirect", MaxInsts: 50_000, Scale: 1.0}), hash(base); got != want {
		t.Errorf("Scale 0 vs 1.0 hash differs")
	}

	// Scenario fields are ignored (and must not perturb) under a named
	// workload; so is LTP config without UseLTP.
	lcfg := core.DefaultConfig()
	noisy := base
	noisy.Seed = 99
	noisy.Knobs = &workload.Knobs{Stride: 7}
	noisy.LTP = &lcfg
	noisy.Oracle = true
	if got, want := hash(noisy), hash(base); got != want {
		t.Errorf("ignored fields perturbed the hash")
	}

	// nil Knobs == explicitly resolved family defaults.
	fam, err := ltp.ScenarioByName("ptrchase")
	if err != nil {
		t.Fatal(err)
	}
	resolved := fam.Resolve(nil)
	sNil := ltp.RunSpec{Scenario: "ptrchase", MaxInsts: 50_000}
	sRes := ltp.RunSpec{Scenario: "ptrchase", MaxInsts: 50_000, Knobs: &resolved}
	if hash(sNil) != hash(sRes) {
		t.Errorf("nil knobs vs resolved defaults hash differs")
	}

	// WarmMode is irrelevant without a warm region.
	warmless := base
	warmless.WarmMode = ltp.WarmDetailed
	if hash(warmless) != hash(base) {
		t.Errorf("WarmMode perturbed the hash of a warmless run")
	}

	// ...but distinguishing fields must distinguish.
	for name, s := range map[string]ltp.RunSpec{
		"workload": {Workload: "compute", MaxInsts: 50_000},
		"insts":    {Workload: "indirect", MaxInsts: 60_000},
		"ltp":      {Workload: "indirect", MaxInsts: 50_000, UseLTP: true},
		"scale":    {Workload: "indirect", MaxInsts: 50_000, Scale: 0.5},
	} {
		if hash(s) == hash(base) {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

// TestCanonicalFixedPoint holds that Canonical is idempotent — in
// particular for resolved BranchEntropy 0, whose literal-zero spelling
// would re-merge to the family default on a second resolution.
func TestCanonicalFixedPoint(t *testing.T) {
	specs := []ltp.RunSpec{
		{Scenario: "branchy", MaxInsts: 50_000, Knobs: &workload.Knobs{BranchEntropy: -1}},
		{Scenario: "hashjoin", MaxInsts: 50_000},
		{Workload: "indirect", MaxInsts: 50_000},
	}
	for _, s := range specs {
		c1, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := c1.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		h1, _ := c1.Hash()
		h2, _ := c2.Hash()
		ho, _ := s.Hash()
		if h1 != h2 || h1 != ho {
			t.Errorf("%s/%s: canonical not a fixed point: %s vs %s vs %s",
				s.Workload, s.Scenario, ho, h1, h2)
		}
		if c1.Scenario != "" && c1.Knobs.BranchEntropy == 0 {
			t.Errorf("%s: canonical knobs carry literal entropy 0 (would re-merge to the family default)", c1.Scenario)
		}
	}

	// Entropy 0 and the family default must stay distinct cells.
	zero := ltp.RunSpec{Scenario: "hashjoin", MaxInsts: 50_000, Knobs: &workload.Knobs{BranchEntropy: -1}}
	def := ltp.RunSpec{Scenario: "hashjoin", MaxInsts: 50_000}
	hz, _ := zero.Hash()
	hd, _ := def.Hash()
	if hz == hd {
		t.Error("entropy-0 spec hashes like the family default")
	}
}

// TestHashRejectsNonCanonical documents which specs have no content
// address.
func TestHashRejectsNonCanonical(t *testing.T) {
	if _, err := (ltp.RunSpec{}).Hash(); err == nil {
		t.Error("empty spec hashed")
	}
	if _, err := (ltp.RunSpec{Workload: "nosuch"}).Hash(); err == nil {
		t.Error("unknown workload hashed")
	}
	if _, err := (ltp.RunSpec{Scenario: "nosuch"}).Hash(); err == nil {
		t.Error("unknown scenario hashed")
	}
	if _, err := (ltp.RunSpec{ReplayFrom: strings.NewReader("x")}).Hash(); err == nil {
		t.Error("replay spec hashed")
	}
}

// TestMatrixHash checks the campaign-level canonicalization: empty
// axes equal their explicit defaults, and Parallelism is excluded.
func TestMatrixHash(t *testing.T) {
	a := ltp.MatrixSpec{Scale: 0.05, DetailInsts: 8_000, Parallelism: 4}
	b := ltp.MatrixSpec{
		Scenarios:   nil,
		Configs:     ltp.DefaultMatrixConfigs(),
		Seeds:       3,
		Scale:       0.05,
		DetailInsts: 8_000,
		Parallelism: 13,
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent matrix specs hash differently:\n%s\n%s", ha, hb)
	}
	c := a
	c.Seeds = 5
	hc, _ := c.Hash()
	if hc == ha {
		t.Fatal("seed-count change did not change the matrix hash")
	}
	if _, err := (ltp.MatrixSpec{Scenarios: []string{"nosuch"}}).Hash(); err == nil {
		t.Fatal("unknown scenario in matrix hashed")
	}
}
