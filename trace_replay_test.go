package ltp_test

import (
	"bytes"
	"testing"

	"ltp"
	"ltp/internal/workload"
)

// diffSpec is the budget every differential run uses: small enough to
// stay in -short, large enough to cross warm-up, parking and DRAM-
// timer activity.
func diffSpec(family string, useLTP bool) ltp.RunSpec {
	return ltp.RunSpec{
		Scenario:  family,
		Seed:      11,
		Scale:     0.05,
		WarmInsts: 4_000,
		MaxInsts:  12_000,
		UseLTP:    useLTP,
	}
}

// TestTraceReplayDifferential records every scenario family's run and
// asserts the replayed run reproduces the recording run's statistics
// bit-identically — every counter, occupancy average and (with LTP)
// parking statistic. This is the contract that makes traces a valid
// substitute for re-emulation in campaigns.
func TestTraceReplayDifferential(t *testing.T) {
	for _, f := range workload.Families() {
		for _, useLTP := range []bool{false, true} {
			name := f.Name
			if useLTP {
				name += "+ltp"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				spec := diffSpec(f.Name, useLTP)
				var buf bytes.Buffer
				spec.RecordTo = &buf
				direct, err := ltp.Run(spec)
				if err != nil {
					t.Fatalf("recording run: %v", err)
				}

				spec.RecordTo = nil
				spec.ReplayFrom = bytes.NewReader(buf.Bytes())
				replay, err := ltp.Run(spec)
				if err != nil {
					t.Fatalf("replay run: %v", err)
				}

				if direct.Result != replay.Result {
					t.Errorf("pipeline stats drifted under replay:\ndirect: %+v\nreplay: %+v",
						direct.Result, replay.Result)
				}
				if (direct.LTP == nil) != (replay.LTP == nil) {
					t.Fatalf("LTP stats presence drifted: %v vs %v", direct.LTP != nil, replay.LTP != nil)
				}
				if direct.LTP != nil && *direct.LTP != *replay.LTP {
					t.Errorf("LTP stats drifted under replay:\ndirect: %+v\nreplay: %+v",
						*direct.LTP, *replay.LTP)
				}
				if direct.Energy != replay.Energy {
					t.Errorf("energy breakdown drifted under replay")
				}
			})
		}
	}
}

// TestTraceReplayDifferentialKernel covers the fixed-kernel path (the
// paper's Fig. 2 loop) and the detailed warm-up mode, which exercises
// the pipeline-pulled (rather than fast-forwarded) capture path.
func TestTraceReplayDifferentialKernel(t *testing.T) {
	for _, wm := range []ltp.WarmMode{ltp.WarmFast, ltp.WarmDetailed} {
		spec := ltp.RunSpec{
			Workload:  "indirect",
			Scale:     0.05,
			WarmInsts: 4_000,
			WarmMode:  wm,
			MaxInsts:  12_000,
			UseLTP:    true,
		}
		var buf bytes.Buffer
		spec.RecordTo = &buf
		direct, err := ltp.Run(spec)
		if err != nil {
			t.Fatalf("%v: recording run: %v", wm, err)
		}
		spec.RecordTo = nil
		spec.ReplayFrom = bytes.NewReader(buf.Bytes())
		replay, err := ltp.Run(spec)
		if err != nil {
			t.Fatalf("%v: replay run: %v", wm, err)
		}
		if direct.Result != replay.Result || *direct.LTP != *replay.LTP {
			t.Errorf("%v: stats drifted under replay", wm)
		}
	}
}

// TestTraceReplayCorruptFails asserts a damaged trace fails the run
// with an error instead of returning silently partial statistics.
func TestTraceReplayCorruptFails(t *testing.T) {
	spec := diffSpec("branchy", false)
	var buf bytes.Buffer
	spec.RecordTo = &buf
	if _, err := ltp.Run(spec); err != nil {
		t.Fatal(err)
	}
	spec.RecordTo = nil

	// Chop the trace mid-stream: the replay must report truncation.
	cut := buf.Bytes()[:buf.Len()/2]
	spec.ReplayFrom = bytes.NewReader(cut)
	if _, err := ltp.Run(spec); err == nil {
		t.Error("truncated trace replayed without error")
	}

	// Same, while re-recording the replay: the reader's error must not
	// be masked by the recorder wrapping it.
	var rebuf bytes.Buffer
	spec.ReplayFrom = bytes.NewReader(cut)
	spec.RecordTo = &rebuf
	if _, err := ltp.Run(spec); err == nil {
		t.Error("truncated trace replayed without error while re-recording")
	}
}

// TestTraceReplayBudgetMismatchFails asserts a structurally valid trace
// that is too short for the requested budgets fails the run: silently
// returning the partial (or empty) measured region would let a campaign
// aggregate garbage.
func TestTraceReplayBudgetMismatchFails(t *testing.T) {
	spec := diffSpec("branchy", false)
	var buf bytes.Buffer
	spec.RecordTo = &buf
	if _, err := ltp.Run(spec); err != nil {
		t.Fatal(err)
	}
	spec.RecordTo = nil
	raw := buf.Bytes()

	// Larger measured budget than recorded: partial region, must error.
	big := spec
	big.MaxInsts = spec.MaxInsts * 50
	big.ReplayFrom = bytes.NewReader(raw)
	if _, err := ltp.Run(big); err == nil {
		t.Error("oversized MaxInsts replay returned silently partial stats")
	}

	// Warm-up larger than the whole trace: empty measured region.
	hot := spec
	hot.WarmInsts = spec.WarmInsts + spec.MaxInsts + 1<<20
	hot.ReplayFrom = bytes.NewReader(raw)
	if _, err := ltp.Run(hot); err == nil {
		t.Error("warm-up-eats-trace replay returned silently empty stats")
	}

	// A cycle-capped replay that stops early by the cap is legitimate.
	capped := spec
	capped.MaxCycles = 50
	capped.ReplayFrom = bytes.NewReader(raw)
	if _, err := ltp.Run(capped); err != nil {
		t.Errorf("cycle-capped replay rejected: %v", err)
	}
}
