package ltp

// The scenario-matrix campaign: the cross-product of {scenario family ×
// processor configuration × N seeds}, run on the shared LPT worker pool
// and aggregated as mean ± 95% confidence intervals. It replaces the
// single-seed figure points with a statistically honest population —
// the foundation the scaling roadmap (sharding, multi-backend, remote
// campaigns) builds on. RunMatrix is the synchronous, uncached runner;
// Engine.SubmitMatrix (the campaign service path) executes the same
// cell enumeration asynchronously through the content-addressed cache.

import (
	"fmt"

	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/sched"
	"ltp/internal/sim"
	"ltp/internal/stats"
	"ltp/internal/workload"
)

// MatrixConfig is one processor configuration column of the matrix.
type MatrixConfig struct {
	// Name labels the configuration in tables.
	Name string
	// Pipeline configures the core (nil = Table 1 baseline).
	Pipeline *pipeline.Config
	// UseLTP attaches the parking unit, configured by LTP (nil = the
	// paper's realistic design).
	UseLTP bool
	// LTP configures the parking unit when UseLTP is set.
	LTP *core.Config
}

// DefaultMatrixConfigs returns the standard three-column comparison:
// the Table 1 baseline, the shrunken core LTP targets, and that core
// with LTP attached.
func DefaultMatrixConfigs() []MatrixConfig {
	small := pipeline.DefaultConfig()
	small.IQSize, small.IntRegs, small.FPRegs = 32, 96, 96
	smallLTP := small
	return []MatrixConfig{
		{Name: "IQ64"},
		{Name: "IQ32", Pipeline: &small},
		{Name: "IQ32+LTP", Pipeline: &smallLTP, UseLTP: true},
	}
}

// MatrixSpec describes a scenario-matrix campaign.
type MatrixSpec struct {
	// Scenarios lists scenario family names (empty = every family).
	Scenarios []string
	// Knobs overrides family defaults for every cell (nil = defaults).
	Knobs *workload.Knobs
	// Configs lists the configurations (empty = DefaultMatrixConfigs).
	Configs []MatrixConfig

	// Seeds is the number of replicated runs per cell (default 3).
	Seeds int
	// BaseSeed offsets the replicate seeds (replicate k runs with seed
	// BaseSeed + k).
	BaseSeed int64

	// Scale shrinks workload working sets, as in RunSpec (default 1.0).
	Scale float64
	// WarmInsts is the per-run warm-up budget (default 0).
	WarmInsts uint64
	// DetailInsts is the per-run measured budget (default 1 M).
	DetailInsts uint64
	// WarmMode selects the warm-up path (default WarmFast).
	WarmMode WarmMode
	// Backend selects the execution backend for every cell (default
	// BackendCycle; BackendSampled measures checkpointed intervals at
	// a fraction of the wall-clock; BackendModel runs the whole
	// campaign as fast first-order estimates).
	Backend string
	// Intervals is the sampled backend's measured interval count K per
	// cell (0 = DefaultSampledIntervals; ignored — and canonically
	// zeroed — for other backends, as in RunSpec).
	Intervals int

	// Parallelism bounds concurrent simulations (0 = NumCPU). It does
	// not affect results and is excluded from the campaign's identity
	// (Canonical zeroes it).
	Parallelism int
}

// Canonical returns the campaign in normal form: scenario and config
// lists made explicit (empty = all families / DefaultMatrixConfigs,
// validated), budget defaults filled in, and execution-only fields
// (Parallelism) zeroed so they cannot perturb the campaign's identity.
// Per-cell knob resolution happens at the RunSpec level, where the
// scenario family is known.
//
// Canonical additionally rejects configs whose identity lives outside
// the spec (a prebuilt LTP.Oracle) — they cannot be content-addressed.
// RunMatrix, which never caches, accepts them (it normalizes without
// this restriction).
func (m MatrixSpec) Canonical() (MatrixSpec, error) {
	c, err := m.normalized()
	if err != nil {
		return MatrixSpec{}, err
	}
	for _, cfg := range c.Configs {
		if cfg.UseLTP && cfg.LTP.Oracle != nil {
			return MatrixSpec{}, fmt.Errorf("ltp: matrix config %q with a prebuilt oracle has no canonical form", cfg.Name)
		}
	}
	return c, nil
}

// normalized is Canonical minus the hashability restriction: axes made
// explicit and validated, defaults filled in, Parallelism zeroed.
func (m MatrixSpec) normalized() (MatrixSpec, error) {
	if len(m.Scenarios) == 0 {
		m.Scenarios = workload.FamilyNames()
	}
	for _, name := range m.Scenarios {
		if _, err := workload.FamilyByName(name); err != nil {
			return MatrixSpec{}, err
		}
	}
	if len(m.Configs) == 0 {
		m.Configs = DefaultMatrixConfigs()
	}
	configs := make([]MatrixConfig, len(m.Configs))
	copy(configs, m.Configs)
	for i := range configs {
		pcfg := pipeline.DefaultConfig()
		if configs[i].Pipeline != nil {
			pcfg = *configs[i].Pipeline
		}
		configs[i].Pipeline = &pcfg
		if configs[i].UseLTP {
			lcfg := core.DefaultConfig()
			if configs[i].LTP != nil {
				lcfg = *configs[i].LTP
			}
			configs[i].LTP = &lcfg
		} else {
			configs[i].LTP = nil
		}
	}
	m.Configs = configs
	if m.Seeds <= 0 {
		m.Seeds = 3
	}
	if m.Scale == 0 {
		m.Scale = 1.0
	}
	if m.DetailInsts == 0 {
		m.DetailInsts = 1_000_000
	}
	if m.WarmInsts == 0 {
		m.WarmMode = WarmFast
	}
	backend, err := sim.Lookup(m.Backend)
	if err != nil {
		return MatrixSpec{}, err
	}
	m.Backend = backend.Name()
	if backend.Fidelity() != sim.FidelityCycle {
		m.WarmMode = WarmFast // the analytical warm path is unique
	}
	if m.Backend == BackendSampled {
		m.Intervals = sampledIntervals(m.Intervals, m.DetailInsts)
	} else {
		m.Intervals = 0 // K is meaningless off the sampled backend
	}
	m.Parallelism = 0
	return m, nil
}

// matrixSpecHashVersion versions the canonical matrix serialization
// (see runSpecHashVersion; "mx2": the execution backend joined the
// canonical form; "mx3": the sampled backend's interval count K).
const matrixSpecHashVersion = "mx3"

// Hash returns a stable content address ("mx4:<hex>") of the
// canonical campaign; equal hashes mean identical cell populations.
func (m MatrixSpec) Hash() (string, error) {
	c, err := m.Canonical()
	if err != nil {
		return "", err
	}
	return hashJSON(matrixSpecHashVersion, c)
}

// MatrixCell aggregates one (scenario, config) cell's replicates.
type MatrixCell struct {
	// Scenario names the cell's scenario family.
	Scenario string
	// Config names the cell's configuration column.
	Config string

	// CPI summarizes the replicates' cycles per instruction.
	CPI stats.Summary
	// IPC summarizes instructions per cycle.
	IPC stats.Summary
	// MLP summarizes the average outstanding DRAM requests.
	MLP stats.Summary
	// AvgLoadLat summarizes the average load latency in cycles.
	AvgLoadLat stats.Summary
	// Parked is the time-average number of parked instructions (zero
	// summary when the configuration has no LTP attached).
	Parked stats.Summary
}

// MatrixResult is a finished campaign: one cell per scenario × config,
// ordered scenario-major in the spec's order.
type MatrixResult struct {
	// Scenarios echoes the campaign's scenario axis, in spec order.
	Scenarios []string
	// Configs echoes the configuration axis, in spec order.
	Configs []string
	// Seeds is the replicate count per cell.
	Seeds int
	// Cells holds the aggregates, scenario-major.
	Cells []MatrixCell
}

// Cell returns the named cell, or nil.
func (m *MatrixResult) Cell(scenario, config string) *MatrixCell {
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Scenario == scenario && c.Config == config {
			return c
		}
	}
	return nil
}

// cellRun is one replicate of one matrix cell, ready to execute.
type cellRun struct {
	spec RunSpec
	cell int // index into the scenario-major cell array
}

// matrixRuns expands a canonical campaign into its per-replicate runs,
// cell-major in (scenario, config, seed) order.
func matrixRuns(spec MatrixSpec) []cellRun {
	scenarios, configs := spec.Scenarios, spec.Configs
	runs := make([]cellRun, 0, len(scenarios)*len(configs)*spec.Seeds)
	for si, scn := range scenarios {
		for ci, cfg := range configs {
			for k := 0; k < spec.Seeds; k++ {
				runs = append(runs, cellRun{
					cell: si*len(configs) + ci,
					spec: RunSpec{
						Scenario:  scn,
						Knobs:     spec.Knobs,
						Seed:      spec.BaseSeed + int64(k),
						Scale:     spec.Scale,
						WarmInsts: spec.WarmInsts,
						WarmMode:  spec.WarmMode,
						MaxInsts:  spec.DetailInsts,
						Pipeline:  cfg.Pipeline,
						UseLTP:    cfg.UseLTP,
						LTP:       cfg.LTP,
						Backend:   spec.Backend,
						Intervals: spec.Intervals,
					},
				})
			}
		}
	}
	return runs
}

// runWeight estimates a run's relative wall-clock for LPT ordering:
// LTP machinery and small IQs (higher CPI) dominate, exactly as in the
// experiment suite's estimate. Model-backend cells cost a few percent
// of a detailed cell (no per-cycle loop), so they must not claim the
// longest-processing-time slots a campaign's detailed cells need.
func runWeight(spec RunSpec) float64 {
	c := 1.0
	if spec.UseLTP {
		c += 0.3
	}
	iq := pipeline.DefaultConfig().IQSize
	if spec.Pipeline != nil {
		iq = spec.Pipeline.IQSize
	}
	if iq < 8 {
		iq = 8
	}
	w := c + 32.0/float64(iq)
	switch specBackendName(spec) {
	case BackendSampled:
		// A sampled run cycle-simulates a 1/K coverage fraction and
		// functionally warms the rest (roughly a tenth of detailed
		// cost per instruction).
		k := sampledIntervals(spec.Intervals, spec.MaxInsts)
		w *= 0.1 + 1.0/float64(k)
	default:
		if !specCycleFidelity(spec) {
			w *= 0.05
		}
	}
	return w
}

// aggregateMatrix folds per-replicate results (indexed like
// matrixRuns' output) into the campaign's cell summaries.
func aggregateMatrix(spec MatrixSpec, runs []cellRun, results []RunResult) *MatrixResult {
	scenarios, configs := spec.Scenarios, spec.Configs
	out := &MatrixResult{Scenarios: scenarios, Seeds: spec.Seeds}
	for _, c := range configs {
		out.Configs = append(out.Configs, c.Name)
	}
	out.Cells = make([]MatrixCell, len(scenarios)*len(configs))
	samples := make([][]RunResult, len(out.Cells))
	for i, r := range runs {
		samples[r.cell] = append(samples[r.cell], results[i])
	}
	for ci := range out.Cells {
		cellRuns := samples[ci]
		pull := func(f func(RunResult) float64) stats.Summary {
			vals := make([]float64, len(cellRuns))
			for i, r := range cellRuns {
				vals[i] = f(r)
			}
			return stats.Summarize(vals)
		}
		cell := &out.Cells[ci]
		cell.Scenario = scenarios[ci/len(configs)]
		cell.Config = configs[ci%len(configs)].Name
		cell.CPI = pull(func(r RunResult) float64 { return r.CPI })
		cell.IPC = pull(func(r RunResult) float64 { return r.IPC })
		cell.MLP = pull(func(r RunResult) float64 { return r.MLP })
		cell.AvgLoadLat = pull(func(r RunResult) float64 { return r.AvgLoadLatency })
		if configs[ci%len(configs)].UseLTP {
			cell.Parked = pull(func(r RunResult) float64 {
				if r.LTP == nil {
					return 0
				}
				return r.LTP.AvgInsts
			})
		}
	}
	return out
}

// RunMatrix executes the scenario-matrix campaign on a transient
// shared LPT worker pool and aggregates each cell's replicates into
// mean ± 95% CI summaries. Every run is independent and deterministic
// in its seed, so a matrix is reproducible run-to-run and machine-to-
// machine. RunMatrix is synchronous and uncached, and it remains the
// only campaign path that accepts non-content-addressable configs
// (prebuilt oracles).
//
// Deprecated: new callers should submit the equivalent sweep —
// Engine.Submit with NewMatrixSweep — which is cancellable, cached and
// streams per-cell results; a finished sweep aggregates identically to
// RunMatrix (differentially tested).
func RunMatrix(spec MatrixSpec) (*MatrixResult, error) {
	parallelism := spec.Parallelism
	// normalized, not Canonical: RunMatrix never hashes or caches, so
	// non-content-addressable configs (prebuilt oracles) stay legal.
	canon, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	runs := matrixRuns(canon)

	results := make([]RunResult, len(runs))
	errs := make([]error, len(runs))
	sched.Run(parallelism, len(runs), func(i int) float64 { return runWeight(runs[i].spec) }, func(i int) {
		results[i], errs[i] = Run(runs[i].spec)
	})
	for i, err := range errs {
		if err != nil {
			r := runs[i]
			return nil, fmt.Errorf("ltp: matrix cell %s/%s seed %d: %w",
				r.spec.Scenario, canon.Configs[r.cell%len(canon.Configs)].Name, r.spec.Seed, err)
		}
	}
	return aggregateMatrix(canon, runs, results), nil
}
