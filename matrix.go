package ltp

// The scenario-matrix campaign: the cross-product of {scenario family ×
// processor configuration × N seeds}, run on the shared LPT worker pool
// and aggregated as mean ± 95% confidence intervals. It replaces the
// single-seed figure points with a statistically honest population —
// the foundation the scaling roadmap (sharding, multi-backend, remote
// campaigns) builds on.

import (
	"fmt"

	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/sched"
	"ltp/internal/stats"
	"ltp/internal/workload"
)

// MatrixConfig is one processor configuration column of the matrix.
type MatrixConfig struct {
	// Name labels the configuration in tables.
	Name string
	// Pipeline configures the core (nil = Table 1 baseline).
	Pipeline *pipeline.Config
	// UseLTP attaches the parking unit, configured by LTP (nil = the
	// paper's realistic design).
	UseLTP bool
	LTP    *core.Config
}

// DefaultMatrixConfigs returns the standard three-column comparison:
// the Table 1 baseline, the shrunken core LTP targets, and that core
// with LTP attached.
func DefaultMatrixConfigs() []MatrixConfig {
	small := pipeline.DefaultConfig()
	small.IQSize, small.IntRegs, small.FPRegs = 32, 96, 96
	smallLTP := small
	return []MatrixConfig{
		{Name: "IQ64"},
		{Name: "IQ32", Pipeline: &small},
		{Name: "IQ32+LTP", Pipeline: &smallLTP, UseLTP: true},
	}
}

// MatrixSpec describes a scenario-matrix campaign.
type MatrixSpec struct {
	// Scenarios lists scenario family names (empty = every family).
	Scenarios []string
	// Knobs overrides family defaults for every cell (nil = defaults).
	Knobs *workload.Knobs
	// Configs lists the configurations (empty = DefaultMatrixConfigs).
	Configs []MatrixConfig

	// Seeds is the number of replicated runs per cell (default 3).
	Seeds int
	// BaseSeed offsets the replicate seeds (replicate k runs with seed
	// BaseSeed + k).
	BaseSeed int64

	// Scale, WarmInsts, DetailInsts and WarmMode are the per-run
	// budgets, as in RunSpec (defaults: 1.0, 0, 1 M, WarmFast).
	Scale       float64
	WarmInsts   uint64
	DetailInsts uint64
	WarmMode    WarmMode

	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
}

// MatrixCell aggregates one (scenario, config) cell's replicates.
type MatrixCell struct {
	Scenario string
	Config   string

	CPI        stats.Summary
	IPC        stats.Summary
	MLP        stats.Summary
	AvgLoadLat stats.Summary
	// Parked is the time-average number of parked instructions (zero
	// summary when the configuration has no LTP attached).
	Parked stats.Summary
}

// MatrixResult is a finished campaign: one cell per scenario × config,
// ordered scenario-major in the spec's order.
type MatrixResult struct {
	Scenarios []string
	Configs   []string
	Seeds     int
	Cells     []MatrixCell
}

// Cell returns the named cell, or nil.
func (m *MatrixResult) Cell(scenario, config string) *MatrixCell {
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Scenario == scenario && c.Config == config {
			return c
		}
	}
	return nil
}

// RunMatrix executes the scenario-matrix campaign on the shared LPT
// worker pool and aggregates each cell's replicates into mean ± 95% CI
// summaries. Every run is independent and deterministic in its seed,
// so a matrix is reproducible run-to-run and machine-to-machine.
func RunMatrix(spec MatrixSpec) (*MatrixResult, error) {
	scenarios := spec.Scenarios
	if len(scenarios) == 0 {
		scenarios = workload.FamilyNames()
	}
	for _, name := range scenarios {
		if _, err := workload.FamilyByName(name); err != nil {
			return nil, err
		}
	}
	configs := spec.Configs
	if len(configs) == 0 {
		configs = DefaultMatrixConfigs()
	}
	seeds := spec.Seeds
	if seeds <= 0 {
		seeds = 3
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 1.0
	}
	detail := spec.DetailInsts
	if detail == 0 {
		detail = 1_000_000
	}

	type cellJob struct {
		spec RunSpec
		cell int // index into cells
	}
	jobs := make([]cellJob, 0, len(scenarios)*len(configs)*seeds)
	for si, scn := range scenarios {
		for ci, cfg := range configs {
			for k := 0; k < seeds; k++ {
				jobs = append(jobs, cellJob{
					cell: si*len(configs) + ci,
					spec: RunSpec{
						Scenario:  scn,
						Knobs:     spec.Knobs,
						Seed:      spec.BaseSeed + int64(k),
						Scale:     scale,
						WarmInsts: spec.WarmInsts,
						WarmMode:  spec.WarmMode,
						MaxInsts:  detail,
						Pipeline:  cfg.Pipeline,
						UseLTP:    cfg.UseLTP,
						LTP:       cfg.LTP,
					},
				})
			}
		}
	}

	// cost mirrors the experiment suite's estimate: LTP machinery and
	// small IQs (higher CPI) dominate a job's wall-clock.
	cost := func(i int) float64 {
		j := jobs[i]
		c := 1.0
		if j.spec.UseLTP {
			c += 0.3
		}
		iq := pipeline.DefaultConfig().IQSize
		if j.spec.Pipeline != nil {
			iq = j.spec.Pipeline.IQSize
		}
		if iq < 8 {
			iq = 8
		}
		return c + 32.0/float64(iq)
	}

	results := make([]RunResult, len(jobs))
	errs := make([]error, len(jobs))
	sched.Run(spec.Parallelism, len(jobs), cost, func(i int) {
		results[i], errs[i] = Run(jobs[i].spec)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ltp: matrix cell %s/%s seed %d: %w",
				jobs[i].spec.Scenario, configs[jobs[i].cell%len(configs)].Name, jobs[i].spec.Seed, err)
		}
	}

	out := &MatrixResult{Scenarios: scenarios, Seeds: seeds}
	for _, c := range configs {
		out.Configs = append(out.Configs, c.Name)
	}
	out.Cells = make([]MatrixCell, len(scenarios)*len(configs))
	samples := make([][]RunResult, len(out.Cells))
	for i, j := range jobs {
		samples[j.cell] = append(samples[j.cell], results[i])
	}
	for ci := range out.Cells {
		runs := samples[ci]
		pull := func(f func(RunResult) float64) stats.Summary {
			vals := make([]float64, len(runs))
			for i, r := range runs {
				vals[i] = f(r)
			}
			return stats.Summarize(vals)
		}
		cell := &out.Cells[ci]
		cell.Scenario = scenarios[ci/len(configs)]
		cell.Config = configs[ci%len(configs)].Name
		cell.CPI = pull(func(r RunResult) float64 { return r.CPI })
		cell.IPC = pull(func(r RunResult) float64 { return r.IPC })
		cell.MLP = pull(func(r RunResult) float64 { return r.MLP })
		cell.AvgLoadLat = pull(func(r RunResult) float64 { return r.AvgLoadLatency })
		if configs[ci%len(configs)].UseLTP {
			cell.Parked = pull(func(r RunResult) float64 {
				if r.LTP == nil {
					return 0
				}
				return r.LTP.AvgInsts
			})
		}
	}
	return out, nil
}
