package ltp

import (
	"context"

	"ltp/internal/core"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/sim"
)

// modelBatchKeyVersion prefixes model batch-group keys.
const modelBatchKeyVersion = "mb1"

// modelBatchKey names the batch group a canonical model-backend cell
// belongs to: cells with equal keys share one functional µop stream
// and equal warm/measured budgets, which is exactly the sim.BatchBackend
// admission contract. Timing configuration (pipeline sizes, LTP mode,
// predictors, co-runners, MaxCycles) deliberately stays out — those
// vary across the lanes of one group.
func modelBatchKey(c RunSpec) (string, bool) {
	if c.Backend != BackendModel {
		return "", false
	}
	key, err := hashJSON(modelBatchKeyVersion, struct {
		Workload  string
		Scenario  string
		Knobs     interface{}
		Seed      int64
		Scale     float64
		WarmInsts uint64
		MaxInsts  uint64
	}{c.Workload, c.Scenario, c.Knobs, c.Seed, c.Scale, c.WarmInsts, c.MaxInsts})
	if err != nil {
		return "", false
	}
	return key, true
}

// resolveModelLane turns one canonical model-backend spec into its
// resolved sim.Spec (stream left to the caller — batch lanes share
// one). corMemo deduplicates co-runner traffic capture across lanes:
// sweep lanes usually share a co-runner set, and capturing it is a
// functional emulation pass worth paying once.
func resolveModelLane(spec RunSpec, corMemo map[string][]mem.CorunnerConfig) (sim.Spec, pipeline.Config, *core.Config, error) {
	pcfg := pipeline.DefaultConfig()
	if spec.Pipeline != nil {
		pcfg = *spec.Pipeline
	}
	var cors []mem.CorunnerConfig
	if len(spec.Corunners) > 0 {
		memoKey, err := hashJSON("cor", struct {
			Cors  []Corunner
			Scale float64
		}{spec.Corunners, spec.Scale})
		if err == nil {
			cors = corMemo[memoKey]
		}
		if cors == nil {
			cors, err = buildCorunners(spec.Corunners, spec.Scale)
			if err != nil {
				return sim.Spec{}, pipeline.Config{}, nil, err
			}
			if memoKey != "" {
				corMemo[memoKey] = cors
			}
		}
	}
	var lcfg *core.Config
	if spec.UseLTP {
		c := core.DefaultConfig()
		if spec.LTP != nil {
			c = *spec.LTP
		}
		lcfg = &c
	}
	warmKey, err := modelWarmKey(spec)
	if err != nil {
		warmKey = ""
	}
	return sim.Spec{
		Pipeline:  pcfg,
		LTP:       lcfg,
		WarmInsts: spec.WarmInsts,
		MaxInsts:  spec.MaxInsts,
		MaxCycles: spec.MaxCycles,
		Corunners: cors,
		WarmKey:   warmKey,
	}, pcfg, lcfg, nil
}

// runModelBatch evaluates a group of canonical model-backend specs
// (equal modelBatchKey) in one shared pass through the model backend's
// RunBatch: the functional stream is built lazily once, driven once,
// and fanned into per-config timing lanes. Results and errors are
// positional; each cell's result is bit-identical to what RunContext
// would have produced for it alone.
func runModelBatch(ctx context.Context, specs []RunSpec) ([]RunResult, []error) {
	results := make([]RunResult, len(specs))
	errs := make([]error, len(specs))
	if len(specs) == 0 {
		return results, errs
	}
	backend, err := sim.Lookup(BackendModel)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs
	}
	bb, ok := backend.(sim.BatchBackend)
	if !ok {
		// Registry holds a non-batching model backend (tests can do
		// this); fall back to sequential single-cell runs.
		for i, s := range specs {
			results[i], errs[i] = RunContext(ctx, s)
		}
		return results, errs
	}

	build, _, err := programBuilder(specs[0])
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs
	}
	stream := newLazyStream(func() prog.Stream { return prog.NewEmulator(build()) })

	corMemo := make(map[string][]mem.CorunnerConfig)
	simSpecs := make([]sim.Spec, 0, len(specs))
	lanes := make([]int, 0, len(specs))     // simSpecs index -> specs index
	pcfgs := make([]pipeline.Config, len(specs))
	lcfgs := make([]*core.Config, len(specs))
	for i, s := range specs {
		ss, pcfg, lcfg, err := resolveModelLane(s, corMemo)
		if err != nil {
			errs[i] = err
			continue
		}
		ss.Stream = stream
		pcfgs[i], lcfgs[i] = pcfg, lcfg
		simSpecs = append(simSpecs, ss)
		lanes = append(lanes, i)
	}
	if len(simSpecs) == 0 {
		return results, errs
	}

	for j, br := range bb.RunBatch(ctx, simSpecs) {
		i := lanes[j]
		if br.Err != nil {
			errs[i] = br.Err
			continue
		}
		results[i] = finishResult(br.Stats, pcfgs[i], lcfgs[i])
	}
	return results, errs
}
