module ltp

go 1.24
